// Live hierarchical runtime: a Root master, per-group GroupMasters and the
// elastic worker protocol stitched into a two-level deployment. Each group
// master owns one coding group — it admits that group's workers over TCP,
// runs the epoch-fenced BSP collect/decode loop with its own group-local
// elastic control plane (drift or churn in a group migrates only that
// group), and streams the group's decoded gradient sum to the root as one
// coalesced batch of length-prefixed chunks per iteration. The root
// broadcasts parameters down, reassembles the chunked uploads, reduces them
// along the configured fan-in tree and steps the optimizer.
//
// Groups attach to the root through an adoption handshake rather than a
// fixed spawn order: every group connection (in-process group master or
// out-of-process GroupRunner, and every reconnect after either side
// restarts) opens with MsgAdopt carrying the group's live epoch and member
// IDs. The root reconciles that against what its own journal recorded —
// epoch floors only ever rise, member sets only ever grow — and answers
// with the reconciled floor plus its lease generation, so a group that
// outlived a root crash is re-adopted with its real history instead of
// being respawned from scratch.
//
// With a positive LeaseTTL the root runs under the HA lease in
// CheckpointDir: its generation fences every params broadcast and group-sum
// upload, and the journal guard refuses writes the moment the lease is lost
// (see internal/ha).
//
// Workers speak the unmodified elastic worker protocol (hello/ack,
// MsgReassign, epoch-tagged params and gradients, telemetry), so
// runtime.DialElasticWorker against a group master's address is all a worker
// needs.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// Errors returned by the sharded runtime.
var (
	// ErrBadConfig marks invalid sharded-runtime configurations.
	ErrBadConfig = errors.New("shard: invalid config")
	// ErrGroupFailed is returned when a coding group cannot make progress
	// (lost its planning quorum or timed out beyond its retry budget).
	ErrGroupFailed = errors.New("shard: group failed")
)

// DefaultChunkLen is the default number of float64 elements per upstream
// gradient chunk (512 KiB frames).
const DefaultChunkLen = 1 << 16

// Config configures a sharded training run.
type Config struct {
	// K is the global data-partition count, S the per-group straggler
	// budget. GroupSize, FanIn and Scheme parameterise the sharding planner
	// (see PlanConfig).
	K, S      int
	GroupSize int
	FanIn     int
	Scheme    core.Kind
	// Throughputs are the initial per-worker speed estimates; their length
	// fixes the total worker count and the grouping.
	Throughputs []float64
	// Model, Optimizer, InitialParams, Iterations, SampleCount, IterTimeout,
	// LossEvery and LossFn mirror runtime.MasterConfig.
	Model         ml.Model
	Optimizer     ml.Optimizer
	InitialParams []float64
	Iterations    int
	SampleCount   int
	IterTimeout   time.Duration
	LossEvery     int
	LossFn        func(params []float64) (float64, error)
	// ChunkLen is the number of gradient elements per upstream sub-frame
	// (default DefaultChunkLen); a group's whole upload is one batched write
	// regardless of the chunk count.
	ChunkLen int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise every group's control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// MaxRetries bounds per-group forced replan+retry attempts for a single
	// iteration (default 2).
	MaxRetries int
	// Seed drives plan and strategy construction (fixed seed, reproducible
	// plans).
	Seed int64
	// PartitionSource, when non-nil, turns every group master into a data
	// plane: workers with no local PartitionData fetch their shards over the
	// wire (MsgPartitionReq/MsgPartition) from their group master, which
	// answers partition p with PartitionSource(p). Partition indices are
	// global, so one source serves all groups.
	PartitionSource func(p int) (*ml.Dataset, error)
	// ExternalGroups lists coding groups served by out-of-process
	// GroupRunners: the root does not spawn masters for them and instead
	// waits for their adoption handshakes. Their restarts (and the root's
	// own) are survivable — see GroupRunner.
	ExternalGroups []int
	// AdoptTimeout bounds how long WaitForWorkers waits for every external
	// group's adoption handshake (default 30s).
	AdoptTimeout time.Duration

	// The composable cluster blocks (see internal/clustercfg). Durability: a
	// non-empty CheckpointDir makes training state durable — the root
	// journals every iteration, each group master journals its membership and
	// migrations, and the model is snapshotted every SnapshotEvery iterations
	// (default 10); a fresh run refuses a directory already holding state
	// (checkpoint.ErrExists); Resume instead constructs the hierarchy from
	// the recovered state, with each group's member IDs reserved for
	// ResumeID rejoins and its epoch base raised above everything its journal
	// recorded. HA: a positive LeaseTTL puts the root under the lease in
	// CheckpointDir — construction acquires (or, after a takeover, inherits)
	// the lease, every broadcast and journal write is fenced by its
	// generation, and losing it turns run failures into ha.ErrFenced (Holder
	// defaults to "shard-root"). Telemetry: a non-nil Obs receives iteration
	// phase spans at the root, per-group roster and control-plane metrics,
	// checkpoint and lease metrics, and the structured event journal.
	clustercfg.DurabilityConfig
	clustercfg.HAConfig
	clustercfg.TelemetryConfig
	// Wire selects the gradient codec the root offers each group master at
	// its adoption: groups that advertise it quantize their uplink sums,
	// everyone else stays on raw float64 (mixed-version interop). Group
	// masters pass the same preference down to their workers' hellos.
	Wire clustercfg.WireConfig

	// Deprecated: flat aliases for the embedded cluster blocks above, kept
	// for one release. Set DurabilityConfig.CheckpointDir (etc.) instead;
	// when both views are set the embedded field wins.
	CheckpointDir string
	// Deprecated: set DurabilityConfig.SnapshotEvery.
	SnapshotEvery int
	// Deprecated: set DurabilityConfig.Resume.
	Resume bool
	// Deprecated: set HAConfig.LeaseTTL.
	LeaseTTL time.Duration
	// Deprecated: set HAConfig.Holder.
	Holder string
	// Deprecated: set TelemetryConfig.Obs.
	Obs *obs.Metrics
}

// normalize merges the deprecated flat aliases into the embedded cluster
// blocks (the embedded field wins when both are set) and mirrors the merged
// values back onto the aliases, so internal reads through either view agree.
func (c *Config) normalize() {
	c.DurabilityConfig = c.DurabilityConfig.Merge(c.CheckpointDir, c.SnapshotEvery, c.Resume)
	c.HAConfig = c.HAConfig.Merge(c.LeaseTTL, c.Holder)
	c.TelemetryConfig = c.TelemetryConfig.Merge(c.Obs)
	c.CheckpointDir = c.DurabilityConfig.CheckpointDir
	c.SnapshotEvery = c.DurabilityConfig.SnapshotEvery
	c.Resume = c.DurabilityConfig.Resume
	c.LeaseTTL = c.HAConfig.LeaseTTL
	c.Holder = c.HAConfig.Holder
	c.Obs = c.TelemetryConfig.Obs
}

func (c *Config) validate() error {
	if c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if len(c.Throughputs) == 0 {
		return fmt.Errorf("%w: no workers", ErrBadConfig)
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("%w: resume requires a checkpoint directory", ErrBadConfig)
	}
	if c.LeaseTTL > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("%w: lease requires a checkpoint directory", ErrBadConfig)
	}
	if _, err := c.wireCodec(); err != nil {
		return err
	}
	return nil
}

// wireCodec parses the configured codec preference (empty means raw).
func (c *Config) wireCodec() (grad.Codec, error) {
	if c.Wire.Codec == "" {
		return grad.CodecRaw, nil
	}
	codec, err := grad.ParseCodec(c.Wire.Codec)
	if err != nil {
		return grad.CodecRaw, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return codec, nil
}

// GroupStats summarises one group's run.
type GroupStats struct {
	// Group is the coding-group index; Workers its planned worker count.
	Group, Workers int
	// Epochs is the group-local plan epoch each iteration decoded under.
	Epochs []int
	// Replans is the group's migration history (initial plan included).
	Replans []elastic.ReplanEvent
	// StaleEpochRejected, StaleConnRejected, StragglersSkipped and
	// MalformedSkipped mirror the elastic master's fencing counters;
	// FencedRejected counts uploads fenced by root generation;
	// TelemetrySamples counts control-plane observations.
	StaleEpochRejected, StaleConnRejected, StragglersSkipped, MalformedSkipped, FencedRejected, TelemetrySamples int
	// Joins and Deaths count the group's membership events (rejoins count
	// as joins), mirroring the flat runtime's bookkeeping.
	Joins, Deaths int
}

// Result summarises a sharded training run.
type Result struct {
	// Params are the final parameters.
	Params []float64
	// StartIter is the first iteration this run executed (non-zero when the
	// root was resumed from a checkpoint).
	StartIter int
	// IterTimes are per-iteration wall times in seconds.
	IterTimes []float64
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// Groups holds per-group statistics, indexed by group (external groups
	// keep their own statistics; their entries carry only the layout).
	Groups []GroupStats
	// GroupUploads counts the group sums the root accepted (one per group
	// per iteration); BatchedFrames counts how many of them arrived as a
	// coalesced multi-chunk batch (0 when every model fits one chunk).
	GroupUploads, BatchedFrames int
	// RootGen is the lease generation the run held (0 without a lease);
	// FencedSums counts group uploads rejected for carrying a different
	// generation.
	RootGen, FencedSums int
	// Readoptions counts adoption handshakes beyond each group's first —
	// group masters that reconnected after a restart on either side.
	Readoptions int
	// Failovers records human-readable control-plane events (uplinks lost,
	// groups re-adopted), in order.
	Failovers []string
}

// groupSum is one reassembled group upload (or a dead uplink) posted by a
// reader goroutine to the root's collect loop.
type groupSum struct {
	group   int
	seq     int // uplink incarnation that produced it
	iter    int
	epoch   int
	rootGen int
	vec     []float64
	spans   []transport.PhaseSpan // group phase spans echoed on the final chunk
	batched bool                  // upload arrived as >1 coalesced chunks
	err     error
}

// Root is the top of the hierarchy: it owns the shard plan, spawns one
// in-process GroupMaster per coding group it serves itself, adopts external
// GroupRunners, and drives the global BSP loop over their TCP uplinks.
type Root struct {
	cfg    Config
	plan   *Plan
	codec  grad.Codec // uplink codec preference offered at each adoption
	lis    *transport.Listener
	groups []*groupMaster // indexed by group; nil for external groups
	wg     sync.WaitGroup
	stopc  chan struct{}
	closed sync.Once
	err    chan error
	inbox  chan groupSum

	// Uplink state, guarded by upMu. An uplink is nil while its group is
	// down (crashed runner, lost connection); adoption installs a new conn
	// and bumps the incarnation so frames from the dead conn are ignored.
	upMu         sync.Mutex
	uplink       []*transport.Conn
	upSeq        []int
	adoptedOnce  []bool
	external     []bool
	groupEpoch   []int   // reconciled per-group epoch floor
	groupMembers [][]int // reconciled per-group member IDs (sorted)
	serveIter    int     // iteration the run loop is currently collecting
	readoptions  int
	failovers    []string
	down         bool // set by Close: refuse further adoptions

	adoptedc chan int // adoption notifications for the collect loop

	// Durable-state wiring (nil/zero without CheckpointDir).
	store     *checkpoint.Store
	resume    *checkpoint.State
	params    []float64
	startIter int
	step      int
	clock     float64

	// HA wiring (nil/zero without LeaseTTL).
	lease          *ha.Lease
	gen            int
	stopRenew      func()
	renewSuspended atomic.Bool
}

// NewRoot validates the config, builds the shard plan, starts the root
// listener on addr ("127.0.0.1:0" for tests) and spawns the in-process
// group masters, each listening on its own address. Workers dial their
// group's address (GroupAddrs/GroupOf) with the elastic worker protocol.
// External groups attach themselves afterwards; WaitForWorkers covers their
// adoption.
func NewRoot(cfg Config, addr string) (*Root, error) {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ChunkLen <= 0 {
		cfg.ChunkLen = DefaultChunkLen
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	// Layout only: every group's strategy is owned by its controller (the
	// initial group-local replan builds it from the same estimates).
	if cfg.CheckpointDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10
		cfg.DurabilityConfig.SnapshotEvery = 10
	}
	if cfg.AdoptTimeout <= 0 {
		cfg.AdoptTimeout = 30 * time.Second
	}
	plan, err := BuildPlanLayout(cfg.Throughputs, PlanConfig{
		K: cfg.K, S: cfg.S, GroupSize: cfg.GroupSize, FanIn: cfg.FanIn, Scheme: cfg.Scheme,
	})
	if err != nil {
		return nil, err
	}
	n := plan.NumGroups()
	r := &Root{
		cfg:          cfg,
		plan:         plan,
		groups:       make([]*groupMaster, n),
		uplink:       make([]*transport.Conn, n),
		upSeq:        make([]int, n),
		adoptedOnce:  make([]bool, n),
		external:     make([]bool, n),
		groupEpoch:   make([]int, n),
		groupMembers: make([][]int, n),
		stopc:        make(chan struct{}),
		err:          make(chan error, n+1),
		inbox:        make(chan groupSum, 2*n+4),
		adoptedc:     make(chan int, 2*n+4),
		params:       append([]float64(nil), cfg.InitialParams...),
		stopRenew:    func() {},
	}
	for g := range r.groupEpoch {
		r.groupEpoch[g] = -1
	}
	for _, g := range cfg.ExternalGroups {
		if g < 0 || g >= n {
			return nil, fmt.Errorf("%w: external group %d out of range (plan has %d groups)", ErrBadConfig, g, n)
		}
		r.external[g] = true
	}
	lis, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	r.lis = lis
	if cfg.LeaseTTL > 0 {
		holder := cfg.Holder
		if holder == "" {
			holder = "shard-root"
		}
		lease, err := ha.Acquire(cfg.CheckpointDir, holder, lis.Addr(), cfg.LeaseTTL)
		if err != nil {
			_ = lis.Close()
			return nil, err
		}
		r.lease, r.gen = lease, lease.Gen()
		cfg.Obs.OnLease(uint64(lease.Gen()))
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		rwg.Add(1)
		go r.renewLoop(stop, &rwg)
		var once sync.Once
		r.stopRenew = func() { once.Do(func() { close(stop); rwg.Wait() }) }
	}
	if cfg.CheckpointDir != "" {
		if cfg.Resume {
			state, err := checkpoint.Recover(cfg.CheckpointDir)
			if err != nil {
				r.Close()
				return nil, err
			}
			if err := r.restoreFrom(state); err != nil {
				r.Close()
				return nil, err
			}
			if r.store, err = checkpoint.Reopen(cfg.CheckpointDir); err != nil {
				r.Close()
				return nil, err
			}
			if r.lease != nil {
				r.store.SetGuard(r.lease.Check)
			}
			// Anchor a fresh generation with the resumed state before any
			// journal append (see runtime.NewElasticMaster).
			if err := r.store.WriteSnapshot(r.snapshot(r.startIter)); err != nil {
				r.Close()
				return nil, err
			}
		} else {
			if r.store, err = checkpoint.Create(cfg.CheckpointDir); err != nil {
				r.Close()
				return nil, err
			}
			if r.lease != nil {
				r.store.SetGuard(r.lease.Check)
			}
		}
	}
	if r.store != nil {
		r.store.SetMetrics(cfg.Obs)
	}
	cfg.Obs.BindWire(transport.Wire)
	cfg.Obs.BindWireCodecs(grad.CodecNames(), transport.WireCodec)
	r.codec, _ = cfg.wireCodec() // validated above
	r.serveIter = r.startIter
	// The adoption service runs for the root's lifetime: in-process masters
	// adopt during their construction below; external runners (and every
	// restart of either) adopt whenever they dial in.
	r.wg.Add(1)
	go r.acceptLoop()
	for g := 0; g < n; g++ {
		if r.external[g] {
			continue
		}
		gm, err := newGroupMaster(r, g)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.groups[g] = gm
	}
	return r, nil
}

// renewLoop keeps the root's lease alive until stopped, suspended (fault
// injection) or irrecoverably refused.
func (r *Root) renewLoop(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	interval := r.lease.TTL() / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if r.renewSuspended.Load() {
				return
			}
			if err := r.lease.Renew(); err != nil {
				return
			}
			r.cfg.Obs.OnRenewal()
		}
	}
}

// SuspendLeaseRenewal stops the root from renewing its lease — the fault
// hook simulating a wedged (but not dead) root so a standby can take over.
func (r *Root) SuspendLeaseRenewal() { r.renewSuspended.Store(true) }

// RootGen returns the lease generation this root runs under (0 without a
// lease).
func (r *Root) RootGen() int { return r.gen }

// fenced maps a run failure to the fencing verdict: if the root's lease has
// been taken over, the real error is ha.ErrFenced (the reported failure is
// just how the deposition surfaced).
func (r *Root) fenced(err error) error {
	if r.lease == nil || err == nil || errors.Is(err, ha.ErrFenced) {
		return err
	}
	if verr := r.lease.Verify(); verr != nil && errors.Is(verr, ha.ErrFenced) {
		return fmt.Errorf("%w (run failed: %v)", verr, err)
	}
	return err
}

// acceptLoop serves adoption handshakes for the root's lifetime.
func (r *Root) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.adoptConn(conn)
	}
}

// adoptConn performs the root side of one adoption handshake: it validates
// the group's announcement, reconciles epoch floor and membership (both
// only ever grow), answers with the reconciled state plus the root's lease
// generation, installs the connection as the group's live uplink (bumping
// the incarnation so the dead conn's frames are ignored) and starts its
// reader.
func (r *Root) adoptConn(conn *transport.Conn) {
	defer r.wg.Done()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	env, err := conn.Recv()
	if err != nil || env.Type != transport.MsgAdopt || env.Adopt == nil {
		_ = conn.Close()
		return
	}
	g := env.Adopt.Group
	if g < 0 || g >= len(r.uplink) {
		_ = conn.Close()
		return
	}
	r.upMu.Lock()
	if r.down {
		r.upMu.Unlock()
		_ = conn.Close()
		return
	}
	if env.Adopt.Epoch > r.groupEpoch[g] {
		r.groupEpoch[g] = env.Adopt.Epoch
	}
	r.groupMembers[g] = mergeMembers(r.groupMembers[g], env.Adopt.Members)
	ack := &transport.Envelope{
		Type:    transport.MsgAdopt,
		Iter:    r.serveIter,
		RootGen: r.gen,
		Codec:   roster.NegotiateCodec(byte(r.codec), env.Codecs),
		Adopt: &transport.Adoption{
			Group:   g,
			Epoch:   r.groupEpoch[g],
			Members: append([]int(nil), r.groupMembers[g]...),
		},
	}
	if err := conn.Send(ack); err != nil {
		r.upMu.Unlock()
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	if old := r.uplink[g]; old != nil {
		_ = old.Close()
	}
	r.upSeq[g]++
	seq := r.upSeq[g]
	r.uplink[g] = conn
	// A re-adoption is an uplink replaced on this root, or a surviving
	// group — one announcing a live plan epoch — adopting a root that has
	// never seen it (the warm-standby takeover path). Fresh groups announce
	// epoch -1, so crash-free runs count zero.
	detail := "adopted"
	if r.adoptedOnce[g] || env.Adopt.Epoch >= 0 {
		r.readoptions++
		r.failovers = append(r.failovers, fmt.Sprintf("group %d re-adopted at iteration %d (gen %d)", g, r.serveIter, r.gen))
		detail = "re-adopted"
	}
	r.adoptedOnce[g] = true
	serveIter := r.serveIter
	r.upMu.Unlock()
	r.cfg.Obs.Event(obs.Event{Kind: obs.EvAdoption, Iter: serveIter, Group: g, Detail: detail})
	// Reader first, notification second: the collect loop may resend the
	// current params the moment it learns of the adoption, and the reader
	// must already be draining the conn by then.
	r.wg.Add(1)
	go r.readUplink(g, seq, conn)
	select {
	case r.adoptedc <- g:
	case <-r.stopc:
	}
}

// toObsSpans copies wire phase spans into trace spans.
func toObsSpans(ws []transport.PhaseSpan) []obs.Span {
	if len(ws) == 0 {
		return nil
	}
	out := make([]obs.Span, len(ws))
	for i, sp := range ws {
		out[i] = obs.Span{Phase: sp.Phase, Seconds: sp.Seconds}
	}
	return out
}

// mergeMembers unions two sorted-or-not ID slices into a sorted slice.
func mergeMembers(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// readUplink reassembles one uplink incarnation's chunked batches into full
// group sums and posts them to the collect loop.
func (r *Root) readUplink(g, seq int, conn *transport.Conn) {
	defer r.wg.Done()
	var chunks []*transport.Envelope
	post := func(gs groupSum) bool {
		gs.group, gs.seq = g, seq
		select {
		case r.inbox <- gs:
			return true
		case <-r.stopc:
			return false
		}
	}
	for {
		env, err := conn.Recv()
		if err != nil {
			post(groupSum{err: err})
			return
		}
		if env.Type != transport.MsgGradient {
			continue
		}
		chunks = append(chunks, env)
		if env.Chunks != 0 && env.Chunk != env.Chunks-1 {
			continue
		}
		vec, err := transport.JoinChunks(nil, chunks)
		batched := len(chunks) > 1
		chunks = chunks[:0]
		if err != nil {
			post(groupSum{err: err})
			return
		}
		if !post(groupSum{iter: env.Iter, epoch: env.Epoch, rootGen: env.RootGen, vec: vec, spans: env.Spans, batched: batched}) {
			return
		}
	}
}

// markDown retires one uplink incarnation after its reader or a send
// failed: the conn is closed and the slot nilled so the next adoption
// installs a replacement. Frames from newer incarnations are untouched.
func (r *Root) markDown(g, seq int, cause error) {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	if r.upSeq[g] != seq || r.uplink[g] == nil {
		return // already superseded
	}
	_ = r.uplink[g].Close()
	r.uplink[g] = nil
	r.failovers = append(r.failovers, fmt.Sprintf("group %d uplink lost at iteration %d: %v", g, r.serveIter, cause))
	r.cfg.Obs.Event(obs.Event{Kind: obs.EvUplink, Iter: r.serveIter, Group: g, Detail: fmt.Sprintf("uplink lost: %v", cause)})
}

// sendParams broadcasts one iteration's parameters to one group, stamped
// with the root's generation. A down external group is skipped (adoption
// will trigger a resend); a failed or missing in-process uplink is fatal.
func (r *Root) sendParams(g, iter int, params []float64) error {
	r.upMu.Lock()
	conn, seq := r.uplink[g], r.upSeq[g]
	r.upMu.Unlock()
	if conn == nil {
		if r.external[g] {
			return nil
		}
		return fmt.Errorf("%w: group %d uplink gone", ErrGroupFailed, g)
	}
	env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Vector: params, RootGen: r.gen, Trace: obs.TraceID(uint64(r.gen), -1, iter)}
	_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.IterTimeout))
	err := conn.Send(env)
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil {
		r.markDown(g, seq, err)
		if !r.external[g] {
			return fmt.Errorf("%w: group %d uplink: %v", ErrGroupFailed, g, err)
		}
	}
	return nil
}

// restoreFrom rebuilds the root's durable starting state from a recovered
// checkpoint: parameters, optimizer state and iteration counter, plus the
// per-group epoch floors and member sets that seed adoption reconciliation
// (and, for in-process groups, newGroupMaster's controller restore).
func (r *Root) restoreFrom(state *checkpoint.State) error {
	r.resume = state
	ts, err := state.RestoreTraining(r.cfg.Model.Dim(), r.cfg.Optimizer)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if ts.Params != nil {
		r.params = ts.Params
	}
	r.startIter, r.step, r.clock = ts.Iter, ts.Step, ts.Clock
	r.upMu.Lock()
	for g := range r.groupEpoch {
		if e, ok := state.GroupEpochs[g]; ok && e > r.groupEpoch[g] {
			r.groupEpoch[g] = e
		}
		r.groupMembers[g] = mergeMembers(r.groupMembers[g], state.GroupMembers[g])
	}
	r.upMu.Unlock()
	return nil
}

// snapshot assembles the durable state at an iteration boundary. Group
// summaries come from the live in-process masters (epoch, members and the
// controller's throughput estimates); for external or not-yet-spawned
// groups, from the reconciled adoption state — so the fencing base is never
// narrowed and a promoted root re-plans from real history.
func (r *Root) snapshot(nextIter int) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Iter: nextIter, Epoch: -1, Step: r.step, Clock: r.clock,
		Params: append([]float64(nil), r.params...),
	}
	if so, ok := r.cfg.Optimizer.(ml.StatefulOptimizer); ok {
		snap.OptVecs, snap.OptStep = so.OptimizerState()
	}
	r.upMu.Lock()
	epochs := append([]int(nil), r.groupEpoch...)
	members := make([][]int, len(r.groupMembers))
	for g := range members {
		members[g] = append([]int(nil), r.groupMembers[g]...)
	}
	r.upMu.Unlock()
	for g := 0; g < r.plan.NumGroups(); g++ {
		if gm := r.groups[g]; gm != nil {
			snap.Groups = append(snap.Groups, gm.groupState())
			continue
		}
		snap.Groups = append(snap.Groups, checkpoint.GroupState{Group: g, Epoch: epochs[g], Members: members[g]})
	}
	return snap
}

// persist journals one completed iteration and snapshots on the configured
// cadence. No-op without a checkpoint store.
func (r *Root) persist(iter int) error {
	if r.store == nil {
		return nil
	}
	if err := r.store.Err(); err != nil {
		return fmt.Errorf("iteration %d: journal writes failing: %w", iter, err)
	}
	if err := r.store.AppendIter(iter, 0, r.step); err != nil {
		return fmt.Errorf("iteration %d: %w", iter, err)
	}
	if (iter+1)%r.cfg.SnapshotEvery == 0 || iter+1 == r.cfg.Iterations {
		if err := r.store.WriteSnapshot(r.snapshot(iter + 1)); err != nil {
			return fmt.Errorf("iteration %d: %w", iter, err)
		}
	}
	return nil
}

// Plan exposes the shard plan (groups, partition ownership, tree).
func (r *Root) Plan() *Plan { return r.plan }

// StartIter returns the first iteration this root will run (non-zero after
// a checkpoint resume).
func (r *Root) StartIter() int { return r.startIter }

// Addr returns the root listener address.
func (r *Root) Addr() string { return r.lis.Addr() }

// GroupAddrs returns each in-process group master's listen address, indexed
// by group ("" for external groups — their runners own their addresses).
func (r *Root) GroupAddrs() []string {
	out := make([]string, len(r.groups))
	for g, gm := range r.groups {
		if gm != nil {
			out[g] = gm.addr()
		}
	}
	return out
}

// WaitForWorkers blocks until every in-process group has its planned worker
// quorum and every external group has completed its adoption handshake.
func (r *Root) WaitForWorkers(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, gm := range r.groups {
		if gm == nil {
			continue
		}
		if err := gm.waitForWorkers(time.Until(deadline)); err != nil {
			return err
		}
	}
	adoptBy := time.Now().Add(r.cfg.AdoptTimeout)
	if deadline.Before(adoptBy) {
		adoptBy = deadline
	}
	for g := range r.external {
		if !r.external[g] {
			continue
		}
		for {
			r.upMu.Lock()
			adopted := r.adoptedOnce[g]
			r.upMu.Unlock()
			if adopted {
				break
			}
			if time.Now().After(adoptBy) {
				return fmt.Errorf("%w: external group %d never adopted", ErrGroupFailed, g)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// Run executes the sharded BSP loop to completion and shuts everything
// down.
func (r *Root) Run() (*Result, error) {
	defer r.Close()
	dim := r.cfg.Model.Dim()
	params := append([]float64(nil), r.params...)
	res := &Result{Curve: metrics.Series{Name: "sharded"}, StartIter: r.startIter, RootGen: r.gen}
	clock := r.clock
	if r.cfg.LossFn != nil {
		if l, err := r.cfg.LossFn(params); err == nil {
			res.Curve.Append(clock, l)
		}
	}

	// Adoptions completed during construction already have their uplinks
	// installed, so the first broadcast reaches them — drain their stale
	// notifications rather than double-sending the first iteration.
	for drained := false; !drained; {
		select {
		case <-r.adoptedc:
		default:
			drained = true
		}
	}

	sums := make([][]float64, r.plan.NumGroups())
	for iter := r.startIter; iter < r.cfg.Iterations; iter++ {
		start := time.Now()
		r.upMu.Lock()
		r.serveIter = iter
		r.upMu.Unlock()
		// Epoch -1: plan epochs are group-local here; the epoch gauge is
		// owned by the group replan events.
		sc := r.cfg.Obs.StartIter(iter, -1)
		sc.SetTraceID(obs.TraceID(uint64(r.gen), -1, iter))
		sc.Phase(obs.PhaseBroadcast)
		for g := range sums {
			sums[g] = nil
			if err := r.sendParams(g, iter, params); err != nil {
				return nil, r.fenced(r.drainErr(err))
			}
		}
		sc.Phase(obs.PhaseCollect)
		pending := len(sums)
		// The root's patience must cover a group's full recovery budget: a
		// group master waits IterTimeout per attempt and retries up to
		// MaxRetries times after timeout-driven group-local migrations, so
		// aborting at one IterTimeout would make those retries unreachable.
		// The same budget bounds an external group's restart-and-readopt.
		rootBudget := time.Duration(r.cfg.MaxRetries+1)*r.cfg.IterTimeout + r.cfg.IterTimeout/2
		deadline := time.NewTimer(rootBudget)
		for pending > 0 {
			select {
			case gs := <-r.inbox:
				if gs.err != nil {
					if r.external[gs.group] {
						// A runner died or defected: retire the uplink and
						// keep collecting — its restart re-adopts and the
						// params are resent below. The trace keeps a partial
						// child span for the lost incarnation (Group -1: the
						// root's children are the groups themselves).
						r.markDown(gs.group, gs.seq, gs.err)
						sc.AddMember(obs.MemberSpan{Member: gs.group, Group: -1, Arrival: time.Since(start).Seconds(), Partial: true, Reason: obs.RDead})
						continue
					}
					deadline.Stop()
					return nil, r.fenced(r.drainErr(fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gs.group, gs.err)))
				}
				if gs.rootGen != r.gen {
					res.FencedSums++
					r.cfg.Obs.OnReject(obs.RFenced)
					sc.AddMember(obs.MemberSpan{Member: gs.group, Group: -1, Arrival: time.Since(start).Seconds(), Spans: toObsSpans(gs.spans), Partial: true, Reason: obs.RFenced})
					continue // an upload for a root generation this is not
				}
				if gs.iter != iter {
					continue // frame from a superseded iteration
				}
				if len(gs.vec) != dim || grad.InfOrNaN(gs.vec) {
					// A group master is in-process infrastructure: a mis-sized
					// or non-finite *sum* means training itself blew up, and
					// the group will not resend — fail now rather than burn
					// the whole recovery budget waiting for a frame that
					// cannot come.
					deadline.Stop()
					return nil, fmt.Errorf("%w: group %d sent a non-finite or mis-sized sum at iteration %d", ErrGroupFailed, gs.group, iter)
				}
				if sums[gs.group] == nil {
					pending--
					// Stitch the group's echoed phase spans as this
					// iteration's child span (first accepted sum only — a
					// re-adopted group may double-send after a resend).
					sc.AddMember(obs.MemberSpan{Member: gs.group, Group: -1, Arrival: time.Since(start).Seconds(), Spans: toObsSpans(gs.spans)})
				}
				sums[gs.group] = gs.vec
				r.upMu.Lock()
				if gs.epoch > r.groupEpoch[gs.group] {
					r.groupEpoch[gs.group] = gs.epoch
				}
				r.upMu.Unlock()
				res.GroupUploads++
				if gs.batched {
					res.BatchedFrames++
				}
			case g := <-r.adoptedc:
				if sums[g] == nil {
					if err := r.sendParams(g, iter, params); err != nil {
						deadline.Stop()
						return nil, r.fenced(r.drainErr(err))
					}
				}
			case <-r.stopc:
				deadline.Stop()
				return nil, fmt.Errorf("%w: root closed at iteration %d", ErrGroupFailed, iter)
			case <-deadline.C:
				deadline.Stop()
				return nil, r.fenced(fmt.Errorf("%w: iteration %d: %d group sums missing at timeout", ErrGroupFailed, iter, pending))
			}
		}
		deadline.Stop()

		sc.Phase(obs.PhaseReduce)
		total, err := r.plan.Tree.Aggregate(sums)
		if err != nil {
			return nil, fmt.Errorf("iteration %d aggregate: %w", iter, err)
		}
		g := grad.Gradient(total)
		g.Scale(1 / float64(r.cfg.SampleCount))
		sc.Phase(obs.PhaseStep)
		if err := r.cfg.Optimizer.Step(params, g); err != nil {
			return nil, fmt.Errorf("iteration %d step: %w", iter, err)
		}
		r.step++
		elapsed := time.Since(start).Seconds()
		clock += elapsed
		res.IterTimes = append(res.IterTimes, elapsed)
		if r.cfg.LossFn != nil && r.cfg.LossEvery > 0 && (iter+1)%r.cfg.LossEvery == 0 {
			if l, err := r.cfg.LossFn(params); err == nil {
				res.Curve.Append(clock, l)
			}
		}
		r.params, r.clock = params, clock
		sc.Phase(obs.PhasePersist)
		if err := r.persist(iter); err != nil {
			return nil, r.fenced(err)
		}
		sc.End()
	}

	// Graceful shutdown: stop the group masters, then collect their stats.
	r.upMu.Lock()
	conns := append([]*transport.Conn(nil), r.uplink...)
	r.upMu.Unlock()
	for _, conn := range conns {
		if conn == nil {
			continue
		}
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
		_ = conn.SetWriteDeadline(time.Time{})
	}
	for _, gm := range r.groups {
		if gm != nil {
			gm.waitDone()
		}
	}
	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	res.Groups = make([]GroupStats, len(r.groups))
	for g, gm := range r.groups {
		if gm != nil {
			res.Groups[g] = gm.stats()
		} else {
			res.Groups[g] = GroupStats{Group: g, Workers: len(r.plan.Groups[g].Workers)}
		}
	}
	r.upMu.Lock()
	res.Readoptions = r.readoptions
	res.Failovers = append([]string(nil), r.failovers...)
	r.upMu.Unlock()
	if r.lease != nil {
		r.stopRenew()
		_ = r.lease.Release()
	}
	return res, nil
}

// drainErr prefers a group's own fatal report (queued on r.err) over the
// secondary symptom err that surfaced at the root.
func (r *Root) drainErr(err error) error {
	select {
	case ferr := <-r.err:
		return ferr
	default:
		return err
	}
}

// Close tears down the root and every group master. Safe to call multiple
// times. Close never releases the lease — a closed-but-unreleased lease is
// a crash as far as a standby is concerned, which is exactly the semantics
// tests and failover drills need; Run's success path does release it.
func (r *Root) Close() {
	r.closed.Do(func() {
		r.stopRenew()
		close(r.stopc)
		r.upMu.Lock()
		r.down = true
		conns := append([]*transport.Conn(nil), r.uplink...)
		r.upMu.Unlock()
		for _, gm := range r.groups {
			if gm != nil {
				gm.close()
			}
		}
		for _, conn := range conns {
			if conn != nil {
				_ = conn.Close()
			}
		}
		_ = r.lis.Close()
		r.wg.Wait()
		if r.store != nil {
			_ = r.store.Close()
		}
	})
}

// RunSharded is the one-call entry point: it builds the hierarchy on addr,
// invokes onListen (so the caller can dial workers at the group addresses),
// waits for every group's worker quorum and trains to completion.
func RunSharded(cfg Config, addr string, waitTimeout time.Duration, onListen func(*Root)) (*Result, error) {
	r, err := NewRoot(cfg, addr)
	if err != nil {
		return nil, err
	}
	if onListen != nil {
		onListen(r)
	}
	if err := r.WaitForWorkers(waitTimeout); err != nil {
		r.Close()
		return nil, err
	}
	return r.Run()
}
