// Live hierarchical runtime: a Root master, per-group GroupMasters and the
// elastic worker protocol stitched into a two-level deployment. Each group
// master owns one coding group — it admits that group's workers over TCP,
// runs the epoch-fenced BSP collect/decode loop with its own group-local
// elastic control plane (drift or churn in a group migrates only that
// group), and streams the group's decoded gradient sum to the root as one
// coalesced batch of length-prefixed chunks per iteration. The root
// broadcasts parameters down, reassembles the chunked uploads, reduces them
// along the configured fan-in tree and steps the optimizer.
//
// Workers speak the unmodified elastic worker protocol (hello/ack,
// MsgReassign, epoch-tagged params and gradients, telemetry), so
// runtime.DialElasticWorker against a group master's address is all a worker
// needs.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// Errors returned by the sharded runtime.
var (
	// ErrBadConfig marks invalid sharded-runtime configurations.
	ErrBadConfig = errors.New("shard: invalid config")
	// ErrGroupFailed is returned when a coding group cannot make progress
	// (lost its planning quorum or timed out beyond its retry budget).
	ErrGroupFailed = errors.New("shard: group failed")
)

// DefaultChunkLen is the default number of float64 elements per upstream
// gradient chunk (512 KiB frames).
const DefaultChunkLen = 1 << 16

// Config configures a sharded training run.
type Config struct {
	// K is the global data-partition count, S the per-group straggler
	// budget. GroupSize, FanIn and Scheme parameterise the sharding planner
	// (see PlanConfig).
	K, S      int
	GroupSize int
	FanIn     int
	Scheme    core.Kind
	// Throughputs are the initial per-worker speed estimates; their length
	// fixes the total worker count and the grouping.
	Throughputs []float64
	// Model, Optimizer, InitialParams, Iterations, SampleCount, IterTimeout,
	// LossEvery and LossFn mirror runtime.MasterConfig.
	Model         ml.Model
	Optimizer     ml.Optimizer
	InitialParams []float64
	Iterations    int
	SampleCount   int
	IterTimeout   time.Duration
	LossEvery     int
	LossFn        func(params []float64) (float64, error)
	// ChunkLen is the number of gradient elements per upstream sub-frame
	// (default DefaultChunkLen); a group's whole upload is one batched write
	// regardless of the chunk count.
	ChunkLen int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise every group's control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// MaxRetries bounds per-group forced replan+retry attempts for a single
	// iteration (default 2).
	MaxRetries int
	// Seed drives plan and strategy construction (fixed seed, reproducible
	// plans).
	Seed int64
	// CheckpointDir, when non-empty, makes training state durable: the root
	// journals every iteration, each group master journals its membership
	// and migrations, and the model is snapshotted every SnapshotEvery
	// iterations. See runtime.ElasticConfig for the semantics; a fresh run
	// refuses a directory already holding state (checkpoint.ErrExists).
	CheckpointDir string
	// SnapshotEvery is the snapshot cadence in iterations (default 10).
	SnapshotEvery int
	// Resume constructs the hierarchy from the recovered state: parameters,
	// optimizer state and iteration counter from the newest snapshot; each
	// group's member IDs reserved for ResumeID rejoins; each group's epoch
	// base raised above everything its journal recorded, fencing pre-crash
	// uploads.
	Resume bool
}

func (c *Config) validate() error {
	if c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if len(c.Throughputs) == 0 {
		return fmt.Errorf("%w: no workers", ErrBadConfig)
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("%w: resume requires a checkpoint directory", ErrBadConfig)
	}
	return nil
}

// GroupStats summarises one group's run.
type GroupStats struct {
	// Group is the coding-group index; Workers its planned worker count.
	Group, Workers int
	// Epochs is the group-local plan epoch each iteration decoded under.
	Epochs []int
	// Replans is the group's migration history (initial plan included).
	Replans []elastic.ReplanEvent
	// StaleEpochRejected, StaleConnRejected, StragglersSkipped and
	// MalformedSkipped mirror the elastic master's fencing counters;
	// TelemetrySamples counts control-plane observations.
	StaleEpochRejected, StaleConnRejected, StragglersSkipped, MalformedSkipped, TelemetrySamples int
	// Joins and Deaths count the group's membership events (rejoins count
	// as joins), mirroring the flat runtime's bookkeeping.
	Joins, Deaths int
}

// Result summarises a sharded training run.
type Result struct {
	// Params are the final parameters.
	Params []float64
	// StartIter is the first iteration this run executed (non-zero when the
	// root was resumed from a checkpoint).
	StartIter int
	// IterTimes are per-iteration wall times in seconds.
	IterTimes []float64
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// Groups holds per-group statistics, indexed by group.
	Groups []GroupStats
	// GroupUploads counts the group sums the root accepted (one per group
	// per iteration); BatchedFrames counts how many of them arrived as a
	// coalesced multi-chunk batch (0 when every model fits one chunk).
	GroupUploads, BatchedFrames int
}

// Root is the top of the hierarchy: it owns the shard plan, spawns one
// in-process GroupMaster per coding group, and drives the global BSP loop
// over their TCP uplinks.
type Root struct {
	cfg    Config
	plan   *Plan
	lis    *transport.Listener
	groups []*groupMaster
	uplink []*transport.Conn // per group, registered by hello order
	wg     sync.WaitGroup
	stopc  chan struct{}
	closed sync.Once
	err    chan error

	// Durable-state wiring (nil/zero without CheckpointDir).
	store     *checkpoint.Store
	resume    *checkpoint.State
	params    []float64
	startIter int
	step      int
	clock     float64
}

// NewRoot validates the config, builds the shard plan, starts the root
// listener on addr ("127.0.0.1:0" for tests) and spawns the group masters,
// each listening on its own address. Workers dial their group's address
// (GroupAddrs/GroupOf) with the elastic worker protocol.
func NewRoot(cfg Config, addr string) (*Root, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ChunkLen <= 0 {
		cfg.ChunkLen = DefaultChunkLen
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	// Layout only: every group's strategy is owned by its controller (the
	// initial group-local replan builds it from the same estimates).
	if cfg.CheckpointDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10
	}
	plan, err := BuildPlanLayout(cfg.Throughputs, PlanConfig{
		K: cfg.K, S: cfg.S, GroupSize: cfg.GroupSize, FanIn: cfg.FanIn, Scheme: cfg.Scheme,
	})
	if err != nil {
		return nil, err
	}
	r := &Root{
		cfg:    cfg,
		plan:   plan,
		uplink: make([]*transport.Conn, plan.NumGroups()),
		stopc:  make(chan struct{}),
		err:    make(chan error, plan.NumGroups()+1),
		params: append([]float64(nil), cfg.InitialParams...),
	}
	if cfg.CheckpointDir != "" {
		if cfg.Resume {
			state, err := checkpoint.Recover(cfg.CheckpointDir)
			if err != nil {
				return nil, err
			}
			if err := r.restoreFrom(state); err != nil {
				return nil, err
			}
			if r.store, err = checkpoint.Reopen(cfg.CheckpointDir); err != nil {
				return nil, err
			}
			// Anchor a fresh generation with the resumed state before any
			// journal append (see runtime.NewElasticMaster).
			if err := r.store.WriteSnapshot(r.snapshot(r.startIter)); err != nil {
				_ = r.store.Close()
				return nil, err
			}
		} else if r.store, err = checkpoint.Create(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	lis, err := transport.Listen(addr)
	if err != nil {
		if r.store != nil {
			_ = r.store.Close()
		}
		return nil, err
	}
	r.lis = lis
	for g := range plan.Groups {
		gm, err := newGroupMaster(r, g)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.groups = append(r.groups, gm)
	}
	// Group masters dial the root before admitting workers.
	for range r.groups {
		conn, err := r.lis.Accept()
		if err != nil {
			r.Close()
			return nil, err
		}
		hello, err := conn.Recv()
		if err != nil || hello.Type != transport.MsgHello {
			r.Close()
			return nil, fmt.Errorf("%w: bad group hello", ErrBadConfig)
		}
		g := hello.WorkerID
		if g < 0 || g >= len(r.uplink) || r.uplink[g] != nil {
			r.Close()
			return nil, fmt.Errorf("%w: bad group id %d in hello", ErrBadConfig, g)
		}
		r.uplink[g] = conn
	}
	return r, nil
}

// restoreFrom rebuilds the root's durable starting state from a recovered
// checkpoint: parameters, optimizer state and iteration counter. Per-group
// state (epoch bases, reserved member IDs) is consumed by newGroupMaster.
func (r *Root) restoreFrom(state *checkpoint.State) error {
	r.resume = state
	ts, err := state.RestoreTraining(r.cfg.Model.Dim(), r.cfg.Optimizer)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if ts.Params != nil {
		r.params = ts.Params
	}
	r.startIter, r.step, r.clock = ts.Iter, ts.Step, ts.Clock
	return nil
}

// snapshot assembles the durable state at an iteration boundary. Group
// summaries (max epoch, member IDs) come from the live group masters once
// they exist; before that — the resume anchor — from the recovered state,
// so the fencing base is never narrowed.
func (r *Root) snapshot(nextIter int) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Iter: nextIter, Epoch: -1, Step: r.step, Clock: r.clock,
		Params: append([]float64(nil), r.params...),
	}
	if so, ok := r.cfg.Optimizer.(ml.StatefulOptimizer); ok {
		snap.OptVecs, snap.OptStep = so.OptimizerState()
	}
	if len(r.groups) > 0 {
		for _, gm := range r.groups {
			snap.Groups = append(snap.Groups, gm.groupState())
		}
		return snap
	}
	if r.resume != nil {
		for g := 0; g < r.plan.NumGroups(); g++ {
			gs := checkpoint.GroupState{Group: g, Epoch: -1}
			if e, ok := r.resume.GroupEpochs[g]; ok {
				gs.Epoch = e
			}
			gs.Members = append([]int(nil), r.resume.GroupMembers[g]...)
			snap.Groups = append(snap.Groups, gs)
		}
	}
	return snap
}

// persist journals one completed iteration and snapshots on the configured
// cadence. No-op without a checkpoint store.
func (r *Root) persist(iter int) error {
	if r.store == nil {
		return nil
	}
	if err := r.store.Err(); err != nil {
		return fmt.Errorf("iteration %d: journal writes failing: %w", iter, err)
	}
	if err := r.store.AppendIter(iter, 0, r.step); err != nil {
		return fmt.Errorf("iteration %d: %w", iter, err)
	}
	if (iter+1)%r.cfg.SnapshotEvery == 0 || iter+1 == r.cfg.Iterations {
		if err := r.store.WriteSnapshot(r.snapshot(iter + 1)); err != nil {
			return fmt.Errorf("iteration %d: %w", iter, err)
		}
	}
	return nil
}

// Plan exposes the shard plan (groups, partition ownership, tree).
func (r *Root) Plan() *Plan { return r.plan }

// StartIter returns the first iteration this root will run (non-zero after
// a checkpoint resume).
func (r *Root) StartIter() int { return r.startIter }

// Addr returns the root listener address.
func (r *Root) Addr() string { return r.lis.Addr() }

// GroupAddrs returns each group master's listen address, indexed by group.
func (r *Root) GroupAddrs() []string {
	out := make([]string, len(r.groups))
	for g, gm := range r.groups {
		out[g] = gm.addr()
	}
	return out
}

// WaitForWorkers blocks until every group has its planned worker quorum.
func (r *Root) WaitForWorkers(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, gm := range r.groups {
		if err := gm.waitForWorkers(time.Until(deadline)); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the sharded BSP loop to completion and shuts everything
// down.
func (r *Root) Run() (*Result, error) {
	defer r.Close()
	dim := r.cfg.Model.Dim()
	params := append([]float64(nil), r.params...)
	res := &Result{Curve: metrics.Series{Name: "sharded"}, StartIter: r.startIter}
	clock := r.clock
	if r.cfg.LossFn != nil {
		if l, err := r.cfg.LossFn(params); err == nil {
			res.Curve.Append(clock, l)
		}
	}

	// One reader per uplink reassembles chunked batches into full group
	// sums and counts coalesced frames.
	type groupSum struct {
		group   int
		iter    int
		vec     []float64
		batched bool // upload arrived as >1 coalesced chunks
		err     error
	}
	inbox := make(chan groupSum, len(r.groups))
	for g, conn := range r.uplink {
		r.wg.Add(1)
		go func(g int, conn *transport.Conn) {
			defer r.wg.Done()
			var chunks []*transport.Envelope
			post := func(gs groupSum) bool {
				select {
				case inbox <- gs:
					return true
				case <-r.stopc:
					return false
				}
			}
			for {
				env, err := conn.Recv()
				if err != nil {
					post(groupSum{group: g, err: err})
					return
				}
				if env.Type != transport.MsgGradient {
					continue
				}
				chunks = append(chunks, env)
				if env.Chunks != 0 && env.Chunk != env.Chunks-1 {
					continue
				}
				vec, err := transport.JoinChunks(nil, chunks)
				batched := len(chunks) > 1
				chunks = chunks[:0]
				if err != nil {
					post(groupSum{group: g, err: err})
					return
				}
				if !post(groupSum{group: g, iter: env.Iter, vec: vec, batched: batched}) {
					return
				}
			}
		}(g, conn)
	}

	sums := make([][]float64, len(r.groups))
	for iter := r.startIter; iter < r.cfg.Iterations; iter++ {
		start := time.Now()
		for g, conn := range r.uplink {
			env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Vector: params}
			_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.IterTimeout))
			err := conn.Send(env)
			_ = conn.SetWriteDeadline(time.Time{})
			if err != nil {
				return nil, fmt.Errorf("%w: group %d uplink: %v", ErrGroupFailed, g, err)
			}
		}
		for i := range sums {
			sums[i] = nil
		}
		pending := len(r.groups)
		// The root's patience must cover a group's full recovery budget: a
		// group master waits IterTimeout per attempt and retries up to
		// MaxRetries times after timeout-driven group-local migrations, so
		// aborting at one IterTimeout would make those retries unreachable.
		rootBudget := time.Duration(r.cfg.MaxRetries+1)*r.cfg.IterTimeout + r.cfg.IterTimeout/2
		deadline := time.NewTimer(rootBudget)
		for pending > 0 {
			select {
			case gs := <-inbox:
				if gs.err != nil {
					deadline.Stop()
					select {
					case err := <-r.err:
						return nil, err
					default:
					}
					return nil, fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gs.group, gs.err)
				}
				if gs.iter != iter {
					continue // frame from a superseded iteration
				}
				if len(gs.vec) != dim || grad.InfOrNaN(gs.vec) {
					// A group master is in-process infrastructure: a mis-sized
					// or non-finite *sum* means training itself blew up, and
					// the group will not resend — fail now rather than burn
					// the whole recovery budget waiting for a frame that
					// cannot come.
					deadline.Stop()
					return nil, fmt.Errorf("%w: group %d sent a non-finite or mis-sized sum at iteration %d", ErrGroupFailed, gs.group, iter)
				}
				if sums[gs.group] == nil {
					pending--
				}
				sums[gs.group] = gs.vec
				res.GroupUploads++
				if gs.batched {
					res.BatchedFrames++
				}
			case <-deadline.C:
				deadline.Stop()
				return nil, fmt.Errorf("%w: iteration %d: %d group sums missing at timeout", ErrGroupFailed, iter, pending)
			}
		}
		deadline.Stop()

		total, err := r.plan.Tree.Aggregate(sums)
		if err != nil {
			return nil, fmt.Errorf("iteration %d aggregate: %w", iter, err)
		}
		g := grad.Gradient(total)
		g.Scale(1 / float64(r.cfg.SampleCount))
		if err := r.cfg.Optimizer.Step(params, g); err != nil {
			return nil, fmt.Errorf("iteration %d step: %w", iter, err)
		}
		r.step++
		elapsed := time.Since(start).Seconds()
		clock += elapsed
		res.IterTimes = append(res.IterTimes, elapsed)
		if r.cfg.LossFn != nil && r.cfg.LossEvery > 0 && (iter+1)%r.cfg.LossEvery == 0 {
			if l, err := r.cfg.LossFn(params); err == nil {
				res.Curve.Append(clock, l)
			}
		}
		r.params, r.clock = params, clock
		if err := r.persist(iter); err != nil {
			return nil, err
		}
	}

	// Graceful shutdown: stop the group masters, then collect their stats.
	for _, conn := range r.uplink {
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
		_ = conn.SetWriteDeadline(time.Time{})
	}
	for _, gm := range r.groups {
		gm.waitDone()
	}
	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	res.Groups = make([]GroupStats, len(r.groups))
	for g, gm := range r.groups {
		res.Groups[g] = gm.stats()
	}
	return res, nil
}

// Close tears down the root and every group master. Safe to call multiple
// times.
func (r *Root) Close() {
	r.closed.Do(func() {
		close(r.stopc)
		for _, gm := range r.groups {
			gm.close()
		}
		for _, conn := range r.uplink {
			if conn != nil {
				_ = conn.Close()
			}
		}
		_ = r.lis.Close()
		r.wg.Wait()
		if r.store != nil {
			_ = r.store.Close()
		}
	})
}

// RunSharded is the one-call entry point: it builds the hierarchy on addr,
// invokes onListen (so the caller can dial workers at the group addresses),
// waits for every group's worker quorum and trains to completion.
func RunSharded(cfg Config, addr string, waitTimeout time.Duration, onListen func(*Root)) (*Result, error) {
	r, err := NewRoot(cfg, addr)
	if err != nil {
		return nil, err
	}
	if onListen != nil {
		onListen(r)
	}
	if err := r.WaitForWorkers(waitTimeout); err != nil {
		r.Close()
		return nil, err
	}
	return r.Run()
}
