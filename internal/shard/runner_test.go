package shard

import (
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/runtime"
)

// serialSGD trains the fixture serially with the same partition split and
// step rule — the exactness reference.
func serialSGD(t *testing.T, fx *liveFixture, iters int) []float64 {
	t.Helper()
	params := fx.model.InitParams(nil)
	for iter := 0; iter < iters; iter++ {
		sum := make(grad.Gradient, fx.model.Dim())
		for _, part := range fx.parts {
			g, err := fx.model.Gradient(params, part)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sum {
				sum[i] += g[i]
			}
		}
		sum.Scale(1 / float64(fx.data.N()))
		if err := (&ml.SGD{LR: 0.5}).Step(params, sum); err != nil {
			t.Fatal(err)
		}
	}
	return params
}

// spawnRunnerWorkers dials the planned worker count for one group at a
// runner's own address.
func spawnRunnerWorkers(t *testing.T, rn *GroupRunner, count int, wg *sync.WaitGroup, delay time.Duration, fx *liveFixture) {
	t.Helper()
	for idx := 0; idx < count; idx++ {
		cfg := runtime.ElasticWorkerConfig{
			Model:         fx.model,
			PartitionData: func(p int) (*ml.Dataset, error) { return fx.parts[p], nil },
		}
		if delay > 0 {
			cfg.DelayPerPartition = func(int) time.Duration { return delay }
		}
		w, err := runtime.DialElasticWorker(rn.Addr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
}

// waitLastIter polls the checkpoint directory until the journal records a
// completed iteration >= iter.
func waitLastIter(t *testing.T, dir string, iter int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, err := checkpoint.Recover(dir); err == nil && st.LastIter >= iter {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("iteration %d never became durable in %s", iter, dir)
}

// TestGroupRunnerServesExternalGroup runs group 0 out-of-process behind a
// GroupRunner (pinned root address, no journal) and group 1 in-process: the
// mixed hierarchy must train to the exact serial result.
func TestGroupRunnerServesExternalGroup(t *testing.T) {
	const k, s, iters, m = 8, 1, 12, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)
	cfg.ExternalGroups = []int{0}

	r, err := NewRoot(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rn, err := StartGroup(GroupRunnerConfig{
		Config: cfg, Group: 0, WorkerAddr: "127.0.0.1:0", RootAddr: r.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Stop()
	if rn.Group() != 0 {
		t.Fatalf("runner serves group %d, want 0", rn.Group())
	}

	var wg sync.WaitGroup
	spawnRunnerWorkers(t, rn, len(r.Plan().Groups[0].Workers), &wg, 0, fx)
	if err := rn.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	addrs := r.GroupAddrs()
	if addrs[0] != "" {
		t.Fatalf("external group 0 has an in-process address %q", addrs[0])
	}
	for idx := 0; idx < len(r.Plan().Groups[1].Workers); idx++ {
		w, err := runtime.DialElasticWorker(addrs[1], runtime.ElasticWorkerConfig{
			Model:         fx.model,
			PartitionData: func(p int) (*ml.Dataset, error) { return fx.parts[p], nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	if err := r.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	want := serialSGD(t, fx, iters)
	for i := range want {
		if math.Abs(want[i]-res.Params[i]) > 1e-8 {
			t.Fatalf("param %d: external-group run %v vs serial %v", i, res.Params[i], want[i])
		}
	}
	if wantUploads := 2 * iters; res.GroupUploads != wantUploads {
		t.Fatalf("root accepted %d uploads, want %d", res.GroupUploads, wantUploads)
	}
	if res.Readoptions != 0 {
		t.Fatalf("unexpected re-adoptions in a crash-free run: %d (%v)", res.Readoptions, res.Failovers)
	}
	select {
	case <-rn.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not shut down after the root's MsgShutdown")
	}
	if err := rn.Err(); err != nil {
		t.Fatalf("runner exited with %v after a clean shutdown", err)
	}
	if st := rn.Stats(); st.FencedRejected != 0 {
		t.Fatalf("crash-free runner fenced %d uploads", st.FencedRejected)
	}
}

// TestGroupRunnerSurvivesRootRestart kills the root mid-run and restarts it
// from its journal: both external runners — and their workers, which never
// reconnect — must be re-adopted by the new root via lease-token discovery,
// and the finished run must still match serial SGD exactly.
func TestGroupRunnerSurvivesRootRestart(t *testing.T) {
	const k, s, iters, m = 8, 1, 24, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 3
	cfg.LeaseTTL = 30 * time.Second
	cfg.ExternalGroups = []int{0, 1}

	root1, err := NewRoot(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if root1.RootGen() != 1 {
		t.Fatalf("first root got generation %d, want 1", root1.RootGen())
	}
	var runners []*GroupRunner
	for g := 0; g < 2; g++ {
		rn, err := StartGroup(GroupRunnerConfig{
			Config: cfg, Group: g, WorkerAddr: "127.0.0.1:0",
			RootDir:    dir,
			JournalDir: filepath.Join(t.TempDir(), "journal"),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rn.Stop()
		runners = append(runners, rn)
	}
	var wg sync.WaitGroup
	for g, rn := range runners {
		spawnRunnerWorkers(t, rn, len(root1.Plan().Groups[g].Workers), &wg, 2*time.Millisecond, fx)
	}
	if err := root1.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = root1.Run() }()

	// Kill the root cold once a few iterations are durable.
	waitLastIter(t, dir, 4, 30*time.Second)
	root1.Close()

	// The restarted root resumes the journal, bumps the lease generation and
	// re-adopts the still-running groups.
	cfg2 := cfg
	cfg2.Resume = true
	root2, err := NewRoot(cfg2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root2.Close()
	if root2.RootGen() != 2 {
		t.Fatalf("restarted root got generation %d, want 2", root2.RootGen())
	}
	if root2.StartIter() == 0 {
		t.Fatal("restarted root did not resume from the journal")
	}
	if err := root2.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := root2.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	want := serialSGD(t, fx, iters)
	for i := range want {
		if math.Abs(want[i]-res.Params[i]) > 1e-8 {
			t.Fatalf("param %d: failover run %v vs serial %v — restart broke exactness", i, res.Params[i], want[i])
		}
	}
	if res.Readoptions != 2 {
		t.Fatalf("new root re-adopted %d groups, want 2 (%v)", res.Readoptions, res.Failovers)
	}
	for g, rn := range runners {
		if got := rn.Gen(); got != 2 {
			t.Fatalf("runner %d still on generation %d after takeover", g, got)
		}
	}
}

// TestShardedZombieRootFenced deposes a root that stops renewing its lease:
// a successor acquires the next generation, both runners defect to it, the
// zombie's run fails typed with ha.ErrFenced, and training completes
// exactly under the new root.
func TestShardedZombieRootFenced(t *testing.T) {
	const k, s, iters, m = 8, 1, 300, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 5
	cfg.LeaseTTL = 300 * time.Millisecond
	cfg.IterTimeout = 1 * time.Second
	cfg.ExternalGroups = []int{0, 1}

	root1, err := NewRoot(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root1.Close()
	var runners []*GroupRunner
	for g := 0; g < 2; g++ {
		rn, err := StartGroup(GroupRunnerConfig{
			Config: cfg, Group: g, WorkerAddr: "127.0.0.1:0", RootDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rn.Stop()
		runners = append(runners, rn)
	}
	var wg sync.WaitGroup
	for g, rn := range runners {
		spawnRunnerWorkers(t, rn, len(root1.Plan().Groups[g].Workers), &wg, 5*time.Millisecond, fx)
	}
	if err := root1.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := root1.Run()
		errc <- err
	}()

	// Wedge the root: it keeps training but stops renewing. Once the TTL
	// lapses a successor may claim the next generation.
	waitLastIter(t, dir, 3, 30*time.Second)
	root1.SuspendLeaseRenewal()
	time.Sleep(2 * cfg.LeaseTTL)

	cfg2 := cfg
	cfg2.Resume = true
	cfg2.Holder = "shard-root-b"
	cfg2.LeaseTTL = 30 * time.Second
	root2, err := NewRoot(cfg2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root2.Close()
	if root2.RootGen() != 2 {
		t.Fatalf("successor got generation %d, want 2", root2.RootGen())
	}
	if err := root2.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := root2.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The zombie must fail typed: its groups defected and its lease is gone.
	select {
	case zerr := <-errc:
		if zerr == nil {
			t.Fatal("deposed root finished its run successfully")
		}
		if !errors.Is(zerr, ha.ErrFenced) {
			t.Fatalf("deposed root failed with %v, want ha.ErrFenced", zerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deposed root never failed")
	}
	wg.Wait()

	want := serialSGD(t, fx, iters)
	for i := range want {
		if math.Abs(want[i]-res.Params[i]) > 1e-8 {
			t.Fatalf("param %d: post-takeover run %v vs serial %v", i, res.Params[i], want[i])
		}
	}
	for g, rn := range runners {
		if got := rn.Gen(); got != 2 {
			t.Fatalf("runner %d never defected to generation 2 (at %d)", g, got)
		}
	}
}
