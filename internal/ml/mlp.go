package ml

import (
	"math"
	"math/rand"

	"github.com/hetgc/hetgc/internal/grad"
)

// MLP is a one-hidden-layer ReLU network with softmax cross-entropy output —
// the deep-model stand-in for the paper's AlexNet/ResNet34 workloads (the
// coding layer only sees its flat gradient vector). Parameter layout:
// W1 (hidden×dim), b1 (hidden), W2 (classes×hidden), b2 (classes).
type MLP struct {
	// InputDim is the feature dimension.
	InputDim int
	// Hidden is the hidden layer width.
	Hidden int
	// NumClasses is the output class count.
	NumClasses int
}

// Dim implements Model.
func (m *MLP) Dim() int {
	return m.Hidden*m.InputDim + m.Hidden + m.NumClasses*m.Hidden + m.NumClasses
}

// offsets returns the parameter segment offsets (w1, b1, w2, b2).
func (m *MLP) offsets() (w1, b1, w2, b2 int) {
	w1 = 0
	b1 = m.Hidden * m.InputDim
	w2 = b1 + m.Hidden
	b2 = w2 + m.NumClasses*m.Hidden
	return
}

// InitParams implements Model with He-style scaled Gaussian weights.
func (m *MLP) InitParams(rng *rand.Rand) []float64 {
	params := make([]float64, m.Dim())
	if rng == nil {
		return params
	}
	w1, b1, w2, b2 := m.offsets()
	scale1 := math.Sqrt(2 / float64(m.InputDim))
	for i := w1; i < b1; i++ {
		params[i] = rng.NormFloat64() * scale1
	}
	scale2 := math.Sqrt(2 / float64(m.Hidden))
	for i := w2; i < b2; i++ {
		params[i] = rng.NormFloat64() * scale2
	}
	return params
}

// Loss implements Model.
func (m *MLP) Loss(params []float64, d *Dataset) (float64, error) {
	if err := checkDims(m, params, d, m.NumClasses); err != nil {
		return 0, err
	}
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.NumClasses)
	var sum float64
	for i, x := range d.Features {
		m.forward(params, x, hidden, logits)
		sum += logSumExp(logits) - logits[int(d.Labels[i])]
	}
	return sum, nil
}

// Gradient implements Model via standard backpropagation.
func (m *MLP) Gradient(params []float64, d *Dataset) (grad.Gradient, error) {
	if err := checkDims(m, params, d, m.NumClasses); err != nil {
		return nil, err
	}
	w1Off, b1Off, w2Off, b2Off := m.offsets()
	g := make(grad.Gradient, m.Dim())
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.NumClasses)
	probs := make([]float64, m.NumClasses)
	dHidden := make([]float64, m.Hidden)
	for i, x := range d.Features {
		m.forward(params, x, hidden, logits)
		softmaxInto(logits, probs)
		y := int(d.Labels[i])

		// Output layer: dL/dz2_c = p_c − 1{c=y}.
		for h := range dHidden {
			dHidden[h] = 0
		}
		for c := 0; c < m.NumClasses; c++ {
			r := probs[c]
			if c == y {
				r -= 1
			}
			w2row := params[w2Off+c*m.Hidden : w2Off+(c+1)*m.Hidden]
			g2row := g[w2Off+c*m.Hidden : w2Off+(c+1)*m.Hidden]
			for h, a := range hidden {
				g2row[h] += r * a
				dHidden[h] += r * w2row[h]
			}
			g[b2Off+c] += r
		}
		// Hidden layer: ReLU gate.
		for h := 0; h < m.Hidden; h++ {
			if hidden[h] <= 0 {
				continue
			}
			dh := dHidden[h]
			g1row := g[w1Off+h*m.InputDim : w1Off+(h+1)*m.InputDim]
			for j, xj := range x {
				g1row[j] += dh * xj
			}
			g[b1Off+h] += dh
		}
	}
	return g, nil
}

// forward computes hidden activations (post-ReLU) and output logits.
func (m *MLP) forward(params []float64, x []float64, hidden, logits []float64) {
	w1Off, b1Off, w2Off, b2Off := m.offsets()
	for h := 0; h < m.Hidden; h++ {
		s := params[b1Off+h]
		row := params[w1Off+h*m.InputDim : w1Off+(h+1)*m.InputDim]
		for j, xj := range x {
			s += row[j] * xj
		}
		if s < 0 {
			s = 0
		}
		hidden[h] = s
	}
	for c := 0; c < m.NumClasses; c++ {
		s := params[b2Off+c]
		row := params[w2Off+c*m.Hidden : w2Off+(c+1)*m.Hidden]
		for h, a := range hidden {
			s += row[h] * a
		}
		logits[c] = s
	}
}
