package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetgc/hetgc/internal/grad"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGaussianMixtureShapeAndBalance(t *testing.T) {
	d, err := GaussianMixture(300, 5, 3, 4, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 300 || d.Dim() != 5 || d.Classes != 3 {
		t.Fatalf("shape: n=%d dim=%d classes=%d", d.N(), d.Dim(), d.Classes)
	}
	counts := map[int]int{}
	for _, y := range d.Labels {
		counts[int(y)]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 100 {
			t.Fatalf("class %d count = %d, want 100", c, counts[c])
		}
	}
}

func TestGaussianMixtureErrors(t *testing.T) {
	if _, err := GaussianMixture(0, 5, 3, 1, rng(1)); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := GaussianMixture(10, 5, 1, 1, rng(1)); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := GaussianMixture(10, 5, 2, 1, nil); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinearData(t *testing.T) {
	d, err := LinearData(50, 4, 0.1, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Classes != 0 {
		t.Fatal("regression dataset must have Classes = 0")
	}
}

func TestSplitSizesAndCoverage(t *testing.T) {
	d, _ := GaussianMixture(103, 3, 2, 2, rng(3))
	parts, err := d.Split(10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range parts {
		want := 10
		if i < 3 {
			want = 11
		}
		if p.N() != want {
			t.Fatalf("partition %d size %d, want %d", i, p.N(), want)
		}
		total += p.N()
	}
	if total != 103 {
		t.Fatalf("total = %d", total)
	}
}

func TestSplitErrors(t *testing.T) {
	d, _ := GaussianMixture(10, 3, 2, 2, rng(4))
	if _, err := d.Split(0); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Split(11); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	d := &Dataset{Features: [][]float64{{1}}, Labels: []float64{5}, Classes: 3}
	if err := d.Validate(); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
	d2 := &Dataset{Features: [][]float64{{1}, {2, 3}}, Labels: []float64{0, 0}}
	if err := d2.Validate(); !errors.Is(err, ErrBadData) {
		t.Fatalf("ragged err = %v", err)
	}
}

// numericGradient approximates the gradient by central differences.
func numericGradient(t *testing.T, m Model, params []float64, d *Dataset) grad.Gradient {
	t.Helper()
	const h = 1e-5
	g := make(grad.Gradient, len(params))
	for i := range params {
		orig := params[i]
		params[i] = orig + h
		lp, err := m.Loss(params, d)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig - h
		lm, err := m.Loss(params, d)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig
		g[i] = (lp - lm) / (2 * h)
	}
	return g
}

func checkGradient(t *testing.T, m Model, d *Dataset, seed int64) {
	t.Helper()
	r := rng(seed)
	params := m.InitParams(r)
	for i := range params {
		params[i] += 0.3 * r.NormFloat64() // move off any special point
	}
	analytic, err := m.Gradient(params, d)
	if err != nil {
		t.Fatal(err)
	}
	numeric := numericGradient(t, m, params, d)
	scale := 1.0
	for _, v := range numeric {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if diff := analytic.MaxAbsDiff(numeric); diff > 1e-4*scale {
		t.Fatalf("gradient check failed: max diff %v (scale %v)", diff, scale)
	}
}

func TestLinearRegressionGradientCheck(t *testing.T) {
	d, _ := LinearData(20, 4, 0.1, rng(5))
	checkGradient(t, &LinearRegression{InputDim: 4}, d, 6)
}

func TestLogisticRegressionGradientCheck(t *testing.T) {
	d, _ := GaussianMixture(20, 4, 2, 2, rng(7))
	checkGradient(t, &LogisticRegression{InputDim: 4}, d, 8)
}

func TestSoftmaxGradientCheck(t *testing.T) {
	d, _ := GaussianMixture(20, 4, 3, 2, rng(9))
	checkGradient(t, &Softmax{InputDim: 4, NumClasses: 3}, d, 10)
}

func TestMLPGradientCheck(t *testing.T) {
	d, _ := GaussianMixture(15, 4, 3, 2, rng(11))
	checkGradient(t, &MLP{InputDim: 4, Hidden: 6, NumClasses: 3}, d, 12)
}

// The coding layer depends on exact gradient additivity across partitions.
func TestGradientAdditivityAcrossPartitions(t *testing.T) {
	models := []Model{
		&LinearRegression{InputDim: 3},
		&Softmax{InputDim: 3, NumClasses: 3},
		&MLP{InputDim: 3, Hidden: 5, NumClasses: 3},
	}
	for _, m := range models {
		var d *Dataset
		if _, ok := m.(*LinearRegression); ok {
			d, _ = LinearData(60, 3, 0.1, rng(13))
		} else {
			d, _ = GaussianMixture(60, 3, 3, 2, rng(13))
		}
		params := m.InitParams(rng(14))
		full, err := m.Gradient(params, d)
		if err != nil {
			t.Fatal(err)
		}
		parts, _ := d.Split(7)
		partials := make([]grad.Gradient, len(parts))
		for i, p := range parts {
			partials[i], err = m.Gradient(params, p)
			if err != nil {
				t.Fatal(err)
			}
		}
		sum, err := grad.Sum(partials)
		if err != nil {
			t.Fatal(err)
		}
		if diff := full.MaxAbsDiff(sum); diff > 1e-9 {
			t.Fatalf("%T: partition gradients not additive, diff %v", m, diff)
		}
	}
}

func TestDimMismatchErrors(t *testing.T) {
	d, _ := GaussianMixture(5, 3, 2, 2, rng(15))
	lr := &LogisticRegression{InputDim: 3}
	if _, err := lr.Loss([]float64{1}, d); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
	sm := &Softmax{InputDim: 3, NumClasses: 5}
	if _, err := sm.Gradient(sm.InitParams(nil), d); !errors.Is(err, ErrBadData) {
		t.Fatalf("class mismatch err = %v", err)
	}
}

func TestSGDReducesLossOnConvexProblem(t *testing.T) {
	d, _ := LinearData(200, 5, 0.01, rng(16))
	m := &LinearRegression{InputDim: 5}
	params := m.InitParams(nil)
	opt := &SGD{LR: 0.1}
	start, _ := MeanLoss(m, params, d)
	for it := 0; it < 200; it++ {
		g, err := m.Gradient(params, d)
		if err != nil {
			t.Fatal(err)
		}
		g.Scale(1 / float64(d.N()))
		if err := opt.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	end, _ := MeanLoss(m, params, d)
	if end > start/10 {
		t.Fatalf("SGD failed to converge: %v -> %v", start, end)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	d, _ := LinearData(100, 3, 0.01, rng(17))
	m := &LinearRegression{InputDim: 3}
	params := m.InitParams(nil)
	opt := &SGD{LR: 0.02, Momentum: 0.9}
	for it := 0; it < 150; it++ {
		g, _ := m.Gradient(params, d)
		g.Scale(1 / float64(d.N()))
		if err := opt.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	end, _ := MeanLoss(m, params, d)
	if end > 0.05 {
		t.Fatalf("momentum SGD loss %v too high", end)
	}
}

func TestAdamConvergesOnSoftmax(t *testing.T) {
	d, _ := GaussianMixture(300, 4, 3, 3, rng(18))
	m := &Softmax{InputDim: 4, NumClasses: 3}
	params := m.InitParams(nil)
	opt := &Adam{LR: 0.05}
	for it := 0; it < 120; it++ {
		g, _ := m.Gradient(params, d)
		g.Scale(1 / float64(d.N()))
		if err := opt.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := m.Accuracy(params, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("accuracy %v too low for separable mixture", acc)
	}
}

func TestMLPTrainsOnMixture(t *testing.T) {
	d, _ := GaussianMixture(200, 4, 3, 3, rng(19))
	m := &MLP{InputDim: 4, Hidden: 12, NumClasses: 3}
	params := m.InitParams(rng(20))
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	start, _ := MeanLoss(m, params, d)
	for it := 0; it < 150; it++ {
		g, _ := m.Gradient(params, d)
		g.Scale(1 / float64(d.N()))
		if err := opt.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	end, _ := MeanLoss(m, params, d)
	if end > start*0.5 {
		t.Fatalf("MLP did not train: %v -> %v", start, end)
	}
}

func TestOptimizerValidation(t *testing.T) {
	if err := (&SGD{LR: 0}).Step([]float64{1}, grad.Gradient{1}); err == nil {
		t.Fatal("zero LR must error")
	}
	if err := (&SGD{LR: 1, Momentum: 1}).Step([]float64{1}, grad.Gradient{1}); err == nil {
		t.Fatal("momentum 1 must error")
	}
	if err := (&SGD{LR: 1}).Step([]float64{1}, grad.Gradient{1, 2}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if err := (&Adam{LR: 0}).Step([]float64{1}, grad.Gradient{1}); err == nil {
		t.Fatal("Adam zero LR must error")
	}
	if err := (&Adam{LR: 1}).Step([]float64{1}, grad.Gradient{1, 2}); err == nil {
		t.Fatal("Adam dim mismatch must error")
	}
}

func TestMeanLossEmptyDataset(t *testing.T) {
	m := &LinearRegression{InputDim: 1}
	if _, err := MeanLoss(m, m.InitParams(nil), &Dataset{}); !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v", err)
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestLogSumExpStable(t *testing.T) {
	v := logSumExp([]float64{1000, 1000})
	if math.IsInf(v, 0) || math.Abs(v-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("logSumExp = %v", v)
	}
}

// Property: softmax probabilities are a distribution.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng(seed)
		n := 2 + r.Intn(6)
		z := make([]float64, n)
		for i := range z {
			z[i] = r.NormFloat64() * 10
		}
		out := make([]float64, n)
		softmaxInto(z, out)
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradient additivity holds for random splits of random data.
func TestAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng(seed)
		n := 20 + r.Intn(40)
		d, err := GaussianMixture(n, 3, 2, 2, r)
		if err != nil {
			return false
		}
		m := &Softmax{InputDim: 3, NumClasses: 2}
		params := m.InitParams(nil)
		for i := range params {
			params[i] = r.NormFloat64()
		}
		full, err := m.Gradient(params, d)
		if err != nil {
			return false
		}
		k := 2 + r.Intn(5)
		parts, err := d.Split(k)
		if err != nil {
			return false
		}
		partials := make([]grad.Gradient, k)
		for i, p := range parts {
			partials[i], err = m.Gradient(params, p)
			if err != nil {
				return false
			}
		}
		sum, err := grad.Sum(partials)
		if err != nil {
			return false
		}
		return full.MaxAbsDiff(sum) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDStateRoundTrip(t *testing.T) {
	params := []float64{1, 2, 3}
	twin := append([]float64(nil), params...)
	g := grad.Gradient{0.5, -0.5, 1}

	o := &SGD{LR: 0.1, Momentum: 0.9}
	for i := 0; i < 3; i++ {
		if err := o.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	vecs, step := o.OptimizerState()
	o2 := &SGD{LR: 0.1, Momentum: 0.9}
	if err := o2.RestoreOptimizerState(vecs, step); err != nil {
		t.Fatal(err)
	}
	// The restored optimizer must continue the exact trajectory.
	copy(twin, params)
	if err := o.Step(params, g); err != nil {
		t.Fatal(err)
	}
	if err := o2.Step(twin, g); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if params[i] != twin[i] {
			t.Fatalf("restored SGD diverged at %d: %v vs %v", i, twin[i], params[i])
		}
	}
	if err := o2.RestoreOptimizerState([][]float64{{1}, {2}, {3}}, 0); err == nil {
		t.Fatal("SGD restore accepted 3 state vectors")
	}
	cold := &SGD{LR: 0.1}
	if vecs, _ := cold.OptimizerState(); vecs != nil {
		t.Fatalf("cold SGD state %v, want nil", vecs)
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	params := []float64{1, 2, 3}
	twin := append([]float64(nil), params...)
	g := grad.Gradient{0.5, -0.5, 1}

	o := &Adam{LR: 0.05}
	for i := 0; i < 4; i++ {
		if err := o.Step(params, g); err != nil {
			t.Fatal(err)
		}
	}
	vecs, step := o.OptimizerState()
	if step != 4 || len(vecs) != 2 {
		t.Fatalf("Adam state %d vecs step %d, want 2 vecs step 4", len(vecs), step)
	}
	o2 := &Adam{LR: 0.05}
	if err := o2.RestoreOptimizerState(vecs, step); err != nil {
		t.Fatal(err)
	}
	copy(twin, params)
	if err := o.Step(params, g); err != nil {
		t.Fatal(err)
	}
	if err := o2.Step(twin, g); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if params[i] != twin[i] {
			t.Fatalf("restored Adam diverged at %d: %v vs %v (bias correction lost?)", i, twin[i], params[i])
		}
	}
	if err := o2.RestoreOptimizerState([][]float64{{1}, {2, 3}}, 1); err == nil {
		t.Fatal("Adam restore accepted mismatched moment lengths")
	}
	if err := o2.RestoreOptimizerState(nil, -1); err == nil {
		t.Fatal("Adam restore accepted negative step")
	}
}
