package ml

import (
	"math"
	"math/rand"

	"github.com/hetgc/hetgc/internal/grad"
)

// Softmax is multinomial logistic regression: C-way classification with
// cross-entropy loss. Parameters are laid out as W (C×dim, row-major)
// followed by biases b (C).
type Softmax struct {
	// InputDim is the feature dimension.
	InputDim int
	// NumClasses is C ≥ 2.
	NumClasses int
}

// Dim implements Model.
func (m *Softmax) Dim() int { return m.NumClasses * (m.InputDim + 1) }

// InitParams implements Model (zeros: the problem is convex).
func (m *Softmax) InitParams(*rand.Rand) []float64 { return make([]float64, m.Dim()) }

// Loss implements Model.
func (m *Softmax) Loss(params []float64, d *Dataset) (float64, error) {
	if err := checkDims(m, params, d, m.NumClasses); err != nil {
		return 0, err
	}
	var sum float64
	logits := make([]float64, m.NumClasses)
	for i, x := range d.Features {
		m.logits(params, x, logits)
		sum += logSumExp(logits) - logits[int(d.Labels[i])]
	}
	return sum, nil
}

// Gradient implements Model.
func (m *Softmax) Gradient(params []float64, d *Dataset) (grad.Gradient, error) {
	if err := checkDims(m, params, d, m.NumClasses); err != nil {
		return nil, err
	}
	g := make(grad.Gradient, m.Dim())
	logits := make([]float64, m.NumClasses)
	probs := make([]float64, m.NumClasses)
	biasOff := m.NumClasses * m.InputDim
	for i, x := range d.Features {
		m.logits(params, x, logits)
		softmaxInto(logits, probs)
		y := int(d.Labels[i])
		for c := 0; c < m.NumClasses; c++ {
			r := probs[c]
			if c == y {
				r -= 1
			}
			row := g[c*m.InputDim : (c+1)*m.InputDim]
			for j, xj := range x {
				row[j] += r * xj
			}
			g[biasOff+c] += r
		}
	}
	return g, nil
}

func (m *Softmax) logits(params []float64, x []float64, out []float64) {
	biasOff := m.NumClasses * m.InputDim
	for c := 0; c < m.NumClasses; c++ {
		s := params[biasOff+c]
		row := params[c*m.InputDim : (c+1)*m.InputDim]
		for j, xj := range x {
			s += row[j] * xj
		}
		out[c] = s
	}
}

// logSumExp computes log Σ e^{z_c} stably.
func logSumExp(z []float64) float64 {
	mx := z[0]
	for _, v := range z[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for _, v := range z {
		sum += math.Exp(v - mx)
	}
	return mx + math.Log(sum)
}

// softmaxInto writes softmax(z) into out.
func softmaxInto(z, out []float64) {
	mx := z[0]
	for _, v := range z[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Accuracy returns the fraction of samples whose argmax prediction matches
// the label.
func (m *Softmax) Accuracy(params []float64, d *Dataset) (float64, error) {
	if err := checkDims(m, params, d, m.NumClasses); err != nil {
		return 0, err
	}
	if d.N() == 0 {
		return 0, ErrBadData
	}
	logits := make([]float64, m.NumClasses)
	correct := 0
	for i, x := range d.Features {
		m.logits(params, x, logits)
		best := 0
		for c, v := range logits {
			if v > logits[best] {
				best = c
			}
		}
		if best == int(d.Labels[i]) {
			correct++
		}
	}
	return float64(correct) / float64(d.N()), nil
}
