package ml

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetgc/hetgc/internal/grad"
)

// Model is a differentiable model over a flat parameter vector. Loss and
// Gradient return *sums* over the dataset's samples, making partial results
// over disjoint partitions exactly additive.
type Model interface {
	// Dim returns the number of parameters.
	Dim() int
	// InitParams returns a fresh parameter vector (small random values for
	// networks, zeros for convex models).
	InitParams(rng *rand.Rand) []float64
	// Loss returns the summed loss over d at params.
	Loss(params []float64, d *Dataset) (float64, error)
	// Gradient returns the summed gradient over d at params.
	Gradient(params []float64, d *Dataset) (grad.Gradient, error)
}

// MeanLoss evaluates Loss divided by the sample count — the value plotted in
// learning curves.
func MeanLoss(m Model, params []float64, d *Dataset) (float64, error) {
	if d.N() == 0 {
		return 0, fmt.Errorf("%w: empty dataset", ErrBadData)
	}
	l, err := m.Loss(params, d)
	if err != nil {
		return 0, err
	}
	return l / float64(d.N()), nil
}

// checkDims validates a (params, dataset) pair against a model.
func checkDims(m Model, params []float64, d *Dataset, wantClasses int) error {
	if len(params) != m.Dim() {
		return fmt.Errorf("%w: %d params, model wants %d", ErrBadData, len(params), m.Dim())
	}
	if wantClasses > 0 && d.Classes != wantClasses {
		return fmt.Errorf("%w: dataset has %d classes, model wants %d", ErrBadData, d.Classes, wantClasses)
	}
	return nil
}

// LinearRegression is least-squares regression: loss ½(w·x+b − y)² summed
// over samples. Parameters: [w (dim), b].
type LinearRegression struct {
	// InputDim is the feature dimension.
	InputDim int
}

// Dim implements Model.
func (m *LinearRegression) Dim() int { return m.InputDim + 1 }

// InitParams implements Model (zeros: the problem is convex).
func (m *LinearRegression) InitParams(*rand.Rand) []float64 { return make([]float64, m.Dim()) }

// Loss implements Model.
func (m *LinearRegression) Loss(params []float64, d *Dataset) (float64, error) {
	if err := checkDims(m, params, d, 0); err != nil {
		return 0, err
	}
	var sum float64
	for i, x := range d.Features {
		r := m.predict(params, x) - d.Labels[i]
		sum += 0.5 * r * r
	}
	return sum, nil
}

// Gradient implements Model.
func (m *LinearRegression) Gradient(params []float64, d *Dataset) (grad.Gradient, error) {
	if err := checkDims(m, params, d, 0); err != nil {
		return nil, err
	}
	g := make(grad.Gradient, m.Dim())
	for i, x := range d.Features {
		r := m.predict(params, x) - d.Labels[i]
		for j, xj := range x {
			g[j] += r * xj
		}
		g[m.InputDim] += r
	}
	return g, nil
}

func (m *LinearRegression) predict(params []float64, x []float64) float64 {
	s := params[m.InputDim]
	for j, xj := range x {
		s += params[j] * xj
	}
	return s
}

// LogisticRegression is binary classification (labels 0/1 with Classes == 2)
// with log loss. Parameters: [w (dim), b].
type LogisticRegression struct {
	// InputDim is the feature dimension.
	InputDim int
}

// Dim implements Model.
func (m *LogisticRegression) Dim() int { return m.InputDim + 1 }

// InitParams implements Model.
func (m *LogisticRegression) InitParams(*rand.Rand) []float64 { return make([]float64, m.Dim()) }

// Loss implements Model.
func (m *LogisticRegression) Loss(params []float64, d *Dataset) (float64, error) {
	if err := checkDims(m, params, d, 2); err != nil {
		return 0, err
	}
	var sum float64
	for i, x := range d.Features {
		z := m.logit(params, x)
		y := d.Labels[i]
		// log(1+e^z) − y·z, computed stably.
		sum += logSumExp0(z) - y*z
	}
	return sum, nil
}

// Gradient implements Model.
func (m *LogisticRegression) Gradient(params []float64, d *Dataset) (grad.Gradient, error) {
	if err := checkDims(m, params, d, 2); err != nil {
		return nil, err
	}
	g := make(grad.Gradient, m.Dim())
	for i, x := range d.Features {
		p := sigmoid(m.logit(params, x))
		r := p - d.Labels[i]
		for j, xj := range x {
			g[j] += r * xj
		}
		g[m.InputDim] += r
	}
	return g, nil
}

func (m *LogisticRegression) logit(params []float64, x []float64) float64 {
	s := params[m.InputDim]
	for j, xj := range x {
		s += params[j] * xj
	}
	return s
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// logSumExp0 computes log(1 + e^z) stably.
func logSumExp0(z float64) float64 {
	if z > 0 {
		return z + math.Log1p(math.Exp(-z))
	}
	return math.Log1p(math.Exp(z))
}
