// Package ml is the machine-learning substrate standing in for the paper's
// PyTorch workloads: synthetic datasets, differentiable models with analytic
// gradients (linear/logistic/softmax regression and a one-hidden-layer MLP
// standing in for AlexNet/ResNet), and first-order optimizers.
//
// Losses and gradients are *sums* over samples, so the partial gradients of
// a partitioned dataset add up exactly to the full-data gradient — the
// additivity the gradient-coding layer relies on.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadData is returned for malformed datasets or dimension mismatches.
var ErrBadData = errors.New("ml: invalid data")

// Dataset holds feature rows with either regression targets (Classes == 0)
// or integer class labels in [0, Classes).
type Dataset struct {
	// Features is the n×dim design matrix.
	Features [][]float64
	// Labels holds the target of each row: a real value for regression or a
	// class index (stored as float64) for classification.
	Labels []float64
	// Classes is the number of classes, or 0 for regression.
	Classes int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Features) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Features) == 0 {
		return 0
	}
	return len(d.Features[0])
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.Features) != len(d.Labels) {
		return fmt.Errorf("%w: %d feature rows, %d labels", ErrBadData, len(d.Features), len(d.Labels))
	}
	dim := d.Dim()
	for i, row := range d.Features {
		if len(row) != dim {
			return fmt.Errorf("%w: row %d has dim %d, want %d", ErrBadData, i, len(row), dim)
		}
	}
	if d.Classes > 0 {
		for i, y := range d.Labels {
			c := int(y)
			if float64(c) != y || c < 0 || c >= d.Classes {
				return fmt.Errorf("%w: label[%d]=%v not a class in [0,%d)", ErrBadData, i, y, d.Classes)
			}
		}
	}
	return nil
}

// Split partitions the dataset into k near-equal contiguous shards (the data
// partitions D_1…D_k of the paper). The first n mod k shards receive one
// extra sample. Shards share the underlying rows (read-only use).
func (d *Dataset) Split(k int) ([]*Dataset, error) {
	if k <= 0 || k > d.N() {
		return nil, fmt.Errorf("%w: cannot split %d samples into %d partitions", ErrBadData, d.N(), k)
	}
	out := make([]*Dataset, k)
	n := d.N()
	base := n / k
	extra := n % k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = &Dataset{
			Features: d.Features[start : start+size],
			Labels:   d.Labels[start : start+size],
			Classes:  d.Classes,
		}
		start += size
	}
	return out, nil
}

// GaussianMixture generates an n-sample, dim-dimensional classification
// dataset with the given number of classes: class c's samples are drawn from
// N(mu_c, I) where the class means are random directions scaled by sep.
// It is the synthetic stand-in for Cifar10/ImageNet image classification.
func GaussianMixture(n, dim, classes int, sep float64, rng *rand.Rand) (*Dataset, error) {
	if n <= 0 || dim <= 0 || classes < 2 || rng == nil {
		return nil, fmt.Errorf("%w: n=%d dim=%d classes=%d rng=%v", ErrBadData, n, dim, classes, rng != nil)
	}
	means := make([][]float64, classes)
	for c := range means {
		mu := make([]float64, dim)
		var norm float64
		for j := range mu {
			mu[j] = rng.NormFloat64()
			norm += mu[j] * mu[j]
		}
		if norm == 0 {
			norm = 1
		}
		scale := sep / math.Sqrt(norm)
		for j := range mu {
			mu[j] *= scale
		}
		means[c] = mu
	}
	d := &Dataset{
		Features: make([][]float64, n),
		Labels:   make([]float64, n),
		Classes:  classes,
	}
	for i := 0; i < n; i++ {
		c := i % classes // balanced classes
		row := make([]float64, dim)
		for j := range row {
			row[j] = means[c][j] + rng.NormFloat64()
		}
		d.Features[i] = row
		d.Labels[i] = float64(c)
	}
	// Shuffle so partitions are class-balanced in expectation.
	rng.Shuffle(n, func(i, j int) {
		d.Features[i], d.Features[j] = d.Features[j], d.Features[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
	return d, nil
}

// LinearData generates a regression dataset y = w*·x + b* + noise·ε with a
// hidden random ground-truth (w*, b*).
func LinearData(n, dim int, noise float64, rng *rand.Rand) (*Dataset, error) {
	if n <= 0 || dim <= 0 || rng == nil {
		return nil, fmt.Errorf("%w: n=%d dim=%d rng=%v", ErrBadData, n, dim, rng != nil)
	}
	w := make([]float64, dim)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	b := rng.NormFloat64()
	d := &Dataset{Features: make([][]float64, n), Labels: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		y := b
		for j := range row {
			row[j] = rng.NormFloat64()
			y += w[j] * row[j]
		}
		d.Features[i] = row
		d.Labels[i] = y + noise*rng.NormFloat64()
	}
	return d, nil
}
