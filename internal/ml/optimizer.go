package ml

import (
	"fmt"
	"math"

	"github.com/hetgc/hetgc/internal/grad"
)

// Optimizer updates a parameter vector in place from a gradient.
type Optimizer interface {
	// Step applies one update. The gradient is not modified.
	Step(params []float64, g grad.Gradient) error
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	// LR is the learning rate (> 0).
	LR float64
	// Momentum in [0,1); 0 disables it.
	Momentum float64

	velocity []float64
}

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (o *SGD) Step(params []float64, g grad.Gradient) error {
	if err := o.validate(params, g); err != nil {
		return err
	}
	if o.Momentum == 0 {
		for i, gi := range g {
			params[i] -= o.LR * gi
		}
		return nil
	}
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	for i, gi := range g {
		o.velocity[i] = o.Momentum*o.velocity[i] + gi
		params[i] -= o.LR * o.velocity[i]
	}
	return nil
}

func (o *SGD) validate(params []float64, g grad.Gradient) error {
	if o.LR <= 0 {
		return fmt.Errorf("ml: SGD learning rate %v must be positive", o.LR)
	}
	if o.Momentum < 0 || o.Momentum >= 1 {
		return fmt.Errorf("ml: SGD momentum %v outside [0,1)", o.Momentum)
	}
	if len(params) != len(g) {
		return fmt.Errorf("%w: %d params vs %d gradient entries", ErrBadData, len(params), len(g))
	}
	if o.velocity != nil && len(o.velocity) != len(params) {
		return fmt.Errorf("%w: optimizer state dim %d vs params %d", ErrBadData, len(o.velocity), len(params))
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba). Zero-value Beta/Eps fields take
// the canonical defaults 0.9 / 0.999 / 1e-8.
type Adam struct {
	// LR is the learning rate (> 0).
	LR float64
	// Beta1, Beta2, Eps override the defaults when non-zero.
	Beta1, Beta2, Eps float64

	m, v []float64
	t    int
}

var _ Optimizer = (*Adam)(nil)

// Step implements Optimizer.
func (o *Adam) Step(params []float64, g grad.Gradient) error {
	if o.LR <= 0 {
		return fmt.Errorf("ml: Adam learning rate %v must be positive", o.LR)
	}
	if len(params) != len(g) {
		return fmt.Errorf("%w: %d params vs %d gradient entries", ErrBadData, len(params), len(g))
	}
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	if len(o.m) != len(params) {
		return fmt.Errorf("%w: optimizer state dim %d vs params %d", ErrBadData, len(o.m), len(params))
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for i, gi := range g {
		o.m[i] = b1*o.m[i] + (1-b1)*gi
		o.v[i] = b2*o.v[i] + (1-b2)*gi*gi
		mHat := o.m[i] / c1
		vHat := o.v[i] / c2
		params[i] -= o.LR * mHat / (math.Sqrt(vHat) + eps)
	}
	return nil
}
