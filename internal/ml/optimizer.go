package ml

import (
	"fmt"
	"math"

	"github.com/hetgc/hetgc/internal/grad"
)

// Optimizer updates a parameter vector in place from a gradient.
type Optimizer interface {
	// Step applies one update. The gradient is not modified.
	Step(params []float64, g grad.Gradient) error
}

// StatefulOptimizer is implemented by optimizers whose update rule carries
// state across steps (momentum velocity, Adam moments). Checkpointing
// masters capture the state into snapshots and restore it on resume, so a
// recovered run continues the exact same trajectory instead of restarting
// the state cold.
type StatefulOptimizer interface {
	Optimizer
	// OptimizerState returns copies of the state vectors and the internal
	// step counter. A cold optimizer returns (nil, 0).
	OptimizerState() (vecs [][]float64, step int)
	// RestoreOptimizerState installs previously captured state. The vector
	// count and lengths must match what OptimizerState produced for this
	// optimizer type (nil/empty restores the cold state).
	RestoreOptimizerState(vecs [][]float64, step int) error
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	// LR is the learning rate (> 0).
	LR float64
	// Momentum in [0,1); 0 disables it.
	Momentum float64

	velocity []float64
}

var _ StatefulOptimizer = (*SGD)(nil)

// OptimizerState implements StatefulOptimizer: the momentum velocity (one
// vector, absent while cold or without momentum).
func (o *SGD) OptimizerState() ([][]float64, int) {
	if o.velocity == nil {
		return nil, 0
	}
	return [][]float64{append([]float64(nil), o.velocity...)}, 0
}

// RestoreOptimizerState implements StatefulOptimizer.
func (o *SGD) RestoreOptimizerState(vecs [][]float64, step int) error {
	switch len(vecs) {
	case 0:
		o.velocity = nil
		return nil
	case 1:
		o.velocity = append([]float64(nil), vecs[0]...)
		return nil
	default:
		return fmt.Errorf("%w: SGD restore got %d state vectors, want at most 1", ErrBadData, len(vecs))
	}
}

// Step implements Optimizer.
func (o *SGD) Step(params []float64, g grad.Gradient) error {
	if err := o.validate(params, g); err != nil {
		return err
	}
	if o.Momentum == 0 {
		for i, gi := range g {
			params[i] -= o.LR * gi
		}
		return nil
	}
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	for i, gi := range g {
		o.velocity[i] = o.Momentum*o.velocity[i] + gi
		params[i] -= o.LR * o.velocity[i]
	}
	return nil
}

func (o *SGD) validate(params []float64, g grad.Gradient) error {
	if o.LR <= 0 {
		return fmt.Errorf("ml: SGD learning rate %v must be positive", o.LR)
	}
	if o.Momentum < 0 || o.Momentum >= 1 {
		return fmt.Errorf("ml: SGD momentum %v outside [0,1)", o.Momentum)
	}
	if len(params) != len(g) {
		return fmt.Errorf("%w: %d params vs %d gradient entries", ErrBadData, len(params), len(g))
	}
	if o.velocity != nil && len(o.velocity) != len(params) {
		return fmt.Errorf("%w: optimizer state dim %d vs params %d", ErrBadData, len(o.velocity), len(params))
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba). Zero-value Beta/Eps fields take
// the canonical defaults 0.9 / 0.999 / 1e-8.
type Adam struct {
	// LR is the learning rate (> 0).
	LR float64
	// Beta1, Beta2, Eps override the defaults when non-zero.
	Beta1, Beta2, Eps float64

	m, v []float64
	t    int
}

var _ StatefulOptimizer = (*Adam)(nil)

// OptimizerState implements StatefulOptimizer: the first/second moment
// vectors and the step counter t (bias correction depends on it, so a
// resume without it would re-warm the learning rate).
func (o *Adam) OptimizerState() ([][]float64, int) {
	if o.m == nil {
		return nil, o.t
	}
	return [][]float64{
		append([]float64(nil), o.m...),
		append([]float64(nil), o.v...),
	}, o.t
}

// RestoreOptimizerState implements StatefulOptimizer.
func (o *Adam) RestoreOptimizerState(vecs [][]float64, step int) error {
	if step < 0 {
		return fmt.Errorf("%w: Adam restore with step %d", ErrBadData, step)
	}
	switch len(vecs) {
	case 0:
		o.m, o.v, o.t = nil, nil, step
		return nil
	case 2:
		if len(vecs[0]) != len(vecs[1]) {
			return fmt.Errorf("%w: Adam restore with mismatched moments (%d vs %d)", ErrBadData, len(vecs[0]), len(vecs[1]))
		}
		o.m = append([]float64(nil), vecs[0]...)
		o.v = append([]float64(nil), vecs[1]...)
		o.t = step
		return nil
	default:
		return fmt.Errorf("%w: Adam restore got %d state vectors, want 0 or 2", ErrBadData, len(vecs))
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []float64, g grad.Gradient) error {
	if o.LR <= 0 {
		return fmt.Errorf("ml: Adam learning rate %v must be positive", o.LR)
	}
	if len(params) != len(g) {
		return fmt.Errorf("%w: %d params vs %d gradient entries", ErrBadData, len(params), len(g))
	}
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	if len(o.m) != len(params) {
		return fmt.Errorf("%w: optimizer state dim %d vs params %d", ErrBadData, len(o.m), len(params))
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for i, gi := range g {
		o.m[i] = b1*o.m[i] + (1-b1)*gi
		o.v[i] = b2*o.v[i] + (1-b2)*gi*gi
		mHat := o.m[i] / c1
		vHat := o.v[i] / c2
		params[i] -= o.LR * mHat / (math.Sqrt(vHat) + eps)
	}
	return nil
}
