// Package grad provides the gradient-vector arithmetic used on both sides of
// the coding pipeline: workers form linear combinations of partial gradients
// (encoding, g̃_i = b_i·[g_1 … g_k]ᵀ) and the master recombines coded
// gradients with decoding coefficients (g = Σ a_i·g̃_i).
package grad

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when gradient dimensions disagree.
var ErrDimension = errors.New("grad: dimension mismatch")

// Gradient is a flat gradient vector over model parameters.
type Gradient []float64

// Clone returns a deep copy.
func (g Gradient) Clone() Gradient { return append(Gradient(nil), g...) }

// AddScaled adds alpha·other into g in place.
func (g Gradient) AddScaled(alpha float64, other Gradient) error {
	if len(g) != len(other) {
		return fmt.Errorf("%w: %d vs %d", ErrDimension, len(g), len(other))
	}
	for i, v := range other {
		g[i] += alpha * v
	}
	return nil
}

// Scale multiplies g by alpha in place.
func (g Gradient) Scale(alpha float64) {
	for i := range g {
		g[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm.
func (g Gradient) Norm2() float64 {
	var s float64
	for _, v := range g {
		s += v * v
	}
	return math.Sqrt(s)
}

// InfOrNaN reports whether the vector contains any NaN or infinity — the
// shared guard every wire-ingest path runs against poisoned uploads.
func InfOrNaN(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// MaxAbsDiff returns the largest absolute element-wise difference, or +Inf on
// dimension mismatch.
func (g Gradient) MaxAbsDiff(other Gradient) float64 {
	if len(g) != len(other) {
		return math.Inf(1)
	}
	var mx float64
	for i := range g {
		if d := math.Abs(g[i] - other[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Encode forms the coded gradient Σ_j coeff[j]·partials[j] for the partial
// gradients a worker computed. coeff[j] pairs with partials[j]; callers pass
// the non-zero entries of the worker's coding row in partition order. The
// result is freshly allocated; steady-state callers should pair EncodeInto
// with GetBuffer/PutBuffer instead.
func Encode(coeff []float64, partials []Gradient) (Gradient, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("%w: no partial gradients", ErrDimension)
	}
	out := make(Gradient, len(partials[0]))
	if err := EncodeInto(out, coeff, partials); err != nil {
		return nil, err
	}
	return out, nil
}

// Combine recombines coded gradients with decoding coefficients:
// g = Σ_i coeffs[i]·coded[i], skipping nil entries whose coefficient is zero
// (stragglers whose results never arrived). The result is freshly allocated;
// steady-state callers should pair CombineInto with GetBuffer/PutBuffer
// instead.
func Combine(coeffs []float64, coded []Gradient, dim int) (Gradient, error) {
	out := make(Gradient, dim)
	if err := CombineInto(out, coeffs, coded); err != nil {
		return nil, err
	}
	return out, nil
}

// Sum returns the plain sum of gradients (the uncoded ground truth used in
// tests and the naive scheme).
func Sum(gs []Gradient) (Gradient, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("%w: empty sum", ErrDimension)
	}
	out := make(Gradient, len(gs[0]))
	if err := SumInto(out, gs); err != nil {
		return nil, err
	}
	return out, nil
}
