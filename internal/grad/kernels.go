package grad

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the allocation-free kernel layer: in-place EncodeInto /
// CombineInto / SumInto variants of the package's arithmetic, the fused
// linear-combination kernels behind them, a sync.Pool of gradient buffers,
// and chunked goroutine fan-out for large dimensions. The exported Encode /
// Combine / Sum wrappers in grad.go delegate here, so every caller gets the
// fused kernels; steady-state callers that manage their own buffers get
// zero-alloc encode/combine.

// parallelMinDim is the vector length above which the kernels fan out across
// goroutines (when GOMAXPROCS allows). Below it the spawn overhead dominates.
const parallelMinDim = 1 << 15

// maxFan bounds the number of worker goroutines per kernel call.
const maxFan = 16

// EncodeInto forms the coded gradient Σ_j coeff[j]·partials[j] in dst,
// overwriting its contents. dst's length fixes the gradient dimension; every
// partial must match it. dst must not alias any partial. It never allocates
// on the serial path.
func EncodeInto(dst Gradient, coeff []float64, partials []Gradient) error {
	if len(coeff) != len(partials) {
		return fmt.Errorf("%w: %d coefficients for %d partials", ErrDimension, len(coeff), len(partials))
	}
	if len(partials) == 0 {
		return fmt.Errorf("%w: no partial gradients", ErrDimension)
	}
	for j, p := range partials {
		if len(p) != len(dst) {
			return fmt.Errorf("%w: partial %d has dim %d, want %d", ErrDimension, j, len(p), len(dst))
		}
	}
	lincomb(dst, coeff, partials)
	return nil
}

// CombineInto recombines coded gradients with decoding coefficients into dst,
// overwriting its contents: dst = Σ_i coeffs[i]·coded[i]. Entries with a zero
// coefficient may be nil (stragglers whose results never arrived); a non-zero
// coefficient with a nil or mis-sized gradient is an error. dst must not
// alias any coded gradient. It never allocates on the serial path.
func CombineInto(dst Gradient, coeffs []float64, coded []Gradient) error {
	if len(coeffs) != len(coded) {
		return fmt.Errorf("%w: %d coefficients for %d coded gradients", ErrDimension, len(coeffs), len(coded))
	}
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		if coded[i] == nil {
			return fmt.Errorf("%w: non-zero coefficient %g for missing gradient %d", ErrDimension, c, i)
		}
		if len(coded[i]) != len(dst) {
			return fmt.Errorf("%w: coded %d has dim %d, want %d", ErrDimension, i, len(coded[i]), len(dst))
		}
	}
	lincomb(dst, coeffs, coded)
	return nil
}

// SumInto writes the plain sum of gradients into dst, overwriting its
// contents. Every gradient must match dst's length. dst must not alias any
// input gradient. It never allocates on the serial path.
func SumInto(dst Gradient, gs []Gradient) error {
	if len(gs) == 0 {
		return fmt.Errorf("%w: empty sum", ErrDimension)
	}
	for i, g := range gs {
		if len(g) != len(dst) {
			return fmt.Errorf("%w: gradient %d has dim %d, want %d", ErrDimension, i, len(g), len(dst))
		}
	}
	sumKernel(dst, gs)
	return nil
}

// lincomb writes Σ_j coeff[j]·vecs[j] into dst (skipping zero coefficients),
// fanning out across goroutines for large dimensions. Inputs are assumed
// validated: len(vecs[j]) == len(dst) for all j.
func lincomb(dst []float64, coeff []float64, vecs []Gradient) {
	if fan := fanout(len(dst)); fan > 1 {
		parallelChunks(len(dst), fan, func(lo, hi int) {
			lincombChunk(dst[lo:hi], coeff, vecs, lo)
		})
		return
	}
	lincombChunk(dst, coeff, vecs, 0)
}

// lincombChunk computes one chunk of the fused linear combination. off is the
// chunk's offset into the full vectors. The j-loop is blocked in groups of
// four so each element of dst is written once and re-read at most once per
// four inputs — the axpy-per-input formulation re-reads and re-writes dst for
// every input, which is what made the scalar loops memory-bound.
func lincombChunk(dst []float64, coeff []float64, vecs []Gradient, off int) {
	n := len(dst)
	// Gather the non-zero terms (bounded scratch on the stack for the common
	// small fan-in; falls back to allocation only beyond 32 inputs).
	var cbuf [32]float64
	var vbuf [32][]float64
	cs, vs := cbuf[:0], vbuf[:0]
	for j, c := range coeff {
		if c == 0 {
			continue
		}
		cs = append(cs, c)
		vs = append(vs, vecs[j][off:off+n])
	}
	if len(cs) == 0 {
		clear(dst)
		return
	}
	// First block overwrites dst, later blocks accumulate.
	first := true
	for len(cs) >= 4 {
		fused4(dst, cs[0], cs[1], cs[2], cs[3], vs[0][:n], vs[1][:n], vs[2][:n], vs[3][:n], first)
		first = false
		cs, vs = cs[4:], vs[4:]
	}
	switch len(cs) {
	case 3:
		c0, c1, c2 := cs[0], cs[1], cs[2]
		x0, x1, x2 := vs[0][:n], vs[1][:n], vs[2][:n]
		if first {
			for i := range dst {
				dst[i] = (c0*x0[i] + c1*x1[i]) + c2*x2[i]
			}
		} else {
			for i := range dst {
				dst[i] += (c0*x0[i] + c1*x1[i]) + c2*x2[i]
			}
		}
	case 2:
		c0, c1 := cs[0], cs[1]
		x0, x1 := vs[0][:n], vs[1][:n]
		if first {
			for i := range dst {
				dst[i] = c0*x0[i] + c1*x1[i]
			}
		} else {
			for i := range dst {
				dst[i] += c0*x0[i] + c1*x1[i]
			}
		}
	case 1:
		c0, x0 := cs[0], vs[0][:n]
		if first {
			for i := range dst {
				dst[i] = c0 * x0[i]
			}
		} else {
			for i := range dst {
				dst[i] += c0 * x0[i]
			}
		}
	case 0:
		if first {
			clear(dst)
		}
	}
}

// fused4 computes one four-input block: dst = (or +=) c0·x0 + c1·x1 + c2·x2
// + c3·x3. The element unroll and the paired products keep four independent
// multiply chains in flight, which is what bounds the scalar loop.
func fused4(dst []float64, c0, c1, c2, c3 float64, x0, x1, x2, x3 []float64, overwrite bool) {
	n := len(dst)
	i := 0
	if overwrite {
		for ; i+4 <= n; i += 4 {
			a0 := c0*x0[i] + c1*x1[i]
			b0 := c2*x2[i] + c3*x3[i]
			a1 := c0*x0[i+1] + c1*x1[i+1]
			b1 := c2*x2[i+1] + c3*x3[i+1]
			a2 := c0*x0[i+2] + c1*x1[i+2]
			b2 := c2*x2[i+2] + c3*x3[i+2]
			a3 := c0*x0[i+3] + c1*x1[i+3]
			b3 := c2*x2[i+3] + c3*x3[i+3]
			dst[i] = a0 + b0
			dst[i+1] = a1 + b1
			dst[i+2] = a2 + b2
			dst[i+3] = a3 + b3
		}
		for ; i < n; i++ {
			dst[i] = (c0*x0[i] + c1*x1[i]) + (c2*x2[i] + c3*x3[i])
		}
		return
	}
	for ; i+4 <= n; i += 4 {
		a0 := c0*x0[i] + c1*x1[i]
		b0 := c2*x2[i] + c3*x3[i]
		a1 := c0*x0[i+1] + c1*x1[i+1]
		b1 := c2*x2[i+1] + c3*x3[i+1]
		a2 := c0*x0[i+2] + c1*x1[i+2]
		b2 := c2*x2[i+2] + c3*x3[i+2]
		a3 := c0*x0[i+3] + c1*x1[i+3]
		b3 := c2*x2[i+3] + c3*x3[i+3]
		dst[i] += a0 + b0
		dst[i+1] += a1 + b1
		dst[i+2] += a2 + b2
		dst[i+3] += a3 + b3
	}
	for ; i < n; i++ {
		dst[i] += (c0*x0[i] + c1*x1[i]) + (c2*x2[i] + c3*x3[i])
	}
}

// sumKernel writes Σ vecs into dst with the same blocking as lincombChunk
// but without the multiplies.
func sumKernel(dst []float64, vecs []Gradient) {
	if fan := fanout(len(dst)); fan > 1 {
		parallelChunks(len(dst), fan, func(lo, hi int) {
			sumChunk(dst[lo:hi], vecs, lo)
		})
		return
	}
	sumChunk(dst, vecs, 0)
}

func sumChunk(dst []float64, vecs []Gradient, off int) {
	n := len(dst)
	x0 := vecs[0][off : off+n]
	copy(dst, x0)
	rest := vecs[1:]
	for len(rest) >= 4 {
		x0, x1 := rest[0][off:off+n], rest[1][off:off+n]
		x2, x3 := rest[2][off:off+n], rest[3][off:off+n]
		for i := range dst {
			dst[i] += (x0[i] + x1[i]) + (x2[i] + x3[i])
		}
		rest = rest[4:]
	}
	for _, v := range rest {
		x := v[off : off+n]
		for i := range dst {
			dst[i] += x[i]
		}
	}
}

// fanout picks the goroutine count for a kernel over dim elements.
func fanout(dim int) int {
	if dim < parallelMinDim {
		return 1
	}
	fan := runtime.GOMAXPROCS(0)
	if fan > maxFan {
		fan = maxFan
	}
	if want := dim / (parallelMinDim / 2); want < fan {
		fan = want
	}
	if fan < 1 {
		fan = 1
	}
	return fan
}

// parallelChunks splits [0,n) into fan contiguous chunks and runs body on
// each from its own goroutine, returning when all complete.
func parallelChunks(n, fan int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + fan - 1) / fan
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// bufPool recycles gradient buffers between iterations so steady-state
// encode/combine allocates nothing. A bounded freelist (rather than a
// sync.Pool) keeps Get/Put themselves allocation-free: sync.Pool's Put boxes
// the slice header on every call.
var bufPool = struct {
	mu   sync.Mutex
	bufs [][]float64
}{}

// maxPooledBuffers bounds the freelist; beyond it PutBuffer drops buffers on
// the floor for the GC. 64 buffers cover a master combining a large cluster's
// coded gradients concurrently.
const maxPooledBuffers = 64

// GetBuffer returns a gradient of length dim from the pool. Its contents are
// unspecified — callers are expected to overwrite it (the *Into kernels do).
// Return it with PutBuffer when done.
func GetBuffer(dim int) Gradient {
	bufPool.mu.Lock()
	for i := len(bufPool.bufs) - 1; i >= 0; i-- {
		if b := bufPool.bufs[i]; cap(b) >= dim {
			last := len(bufPool.bufs) - 1
			bufPool.bufs[i] = bufPool.bufs[last]
			bufPool.bufs[last] = nil
			bufPool.bufs = bufPool.bufs[:last]
			bufPool.mu.Unlock()
			return Gradient(b[:dim])
		}
	}
	bufPool.mu.Unlock()
	return make(Gradient, dim)
}

// PutBuffer recycles a gradient previously obtained from GetBuffer (or any
// caller-owned gradient that is no longer referenced). The caller must not
// use g afterwards.
func PutBuffer(g Gradient) {
	if g == nil {
		return
	}
	bufPool.mu.Lock()
	if len(bufPool.bufs) < maxPooledBuffers {
		bufPool.bufs = append(bufPool.bufs, []float64(g))
	}
	bufPool.mu.Unlock()
}
