package grad

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClone(t *testing.T) {
	g := Gradient{1, 2, 3}
	c := g.Clone()
	c[0] = 99
	if g[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestAddScaled(t *testing.T) {
	g := Gradient{1, 2}
	if err := g.AddScaled(2, Gradient{3, 4}); err != nil {
		t.Fatal(err)
	}
	if g[0] != 7 || g[1] != 10 {
		t.Fatalf("g = %v", g)
	}
	if err := g.AddScaled(1, Gradient{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

func TestScaleAndNorm(t *testing.T) {
	g := Gradient{3, 4}
	g.Scale(2)
	if g.Norm2() != 10 {
		t.Fatalf("norm = %v", g.Norm2())
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := Gradient{1, 2, 3}
	b := Gradient{1, 2.5, 2}
	if d := a.MaxAbsDiff(b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("diff = %v", d)
	}
	if !math.IsInf(a.MaxAbsDiff(Gradient{1}), 1) {
		t.Fatal("mismatched dims should give +Inf")
	}
}

func TestEncode(t *testing.T) {
	partials := []Gradient{{1, 0}, {0, 1}}
	enc, err := Encode([]float64{2, 3}, partials)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != 2 || enc[1] != 3 {
		t.Fatalf("enc = %v", enc)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode([]float64{1}, nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Encode([]float64{1, 1}, []Gradient{{1}, {1, 2}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Encode(nil, nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("empty encode err = %v", err)
	}
}

func TestCombineSkipsStragglers(t *testing.T) {
	coded := []Gradient{{1, 1}, nil, {2, 2}}
	g, err := Combine([]float64{1, 0, 0.5}, coded, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 2 || g[1] != 2 {
		t.Fatalf("g = %v", g)
	}
}

func TestCombineMissingWithNonZeroCoeff(t *testing.T) {
	if _, err := Combine([]float64{1}, []Gradient{nil}, 2); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

func TestCombineDimErrors(t *testing.T) {
	if _, err := Combine([]float64{1, 1}, []Gradient{{1}}, 1); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Combine([]float64{1}, []Gradient{{1, 2}}, 1); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

func TestSum(t *testing.T) {
	g, err := Sum([]Gradient{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 4 || g[1] != 6 {
		t.Fatalf("g = %v", g)
	}
	if _, err := Sum(nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Sum([]Gradient{{1}, {1, 2}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

// Property: Encode is linear — Encode(a+b) = Encode(a) + Encode(b) over
// coefficients.
func TestEncodeLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		dim := 1 + r.Intn(8)
		partials := make([]Gradient, n)
		for i := range partials {
			partials[i] = make(Gradient, dim)
			for j := range partials[i] {
				partials[i][j] = r.NormFloat64()
			}
		}
		ca := make([]float64, n)
		cb := make([]float64, n)
		cs := make([]float64, n)
		for i := 0; i < n; i++ {
			ca[i], cb[i] = r.NormFloat64(), r.NormFloat64()
			cs[i] = ca[i] + cb[i]
		}
		ea, err1 := Encode(ca, partials)
		eb, err2 := Encode(cb, partials)
		es, err3 := Encode(cs, partials)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for j := 0; j < dim; j++ {
			if math.Abs(es[j]-(ea[j]+eb[j])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
