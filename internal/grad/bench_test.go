package grad

import (
	"math/rand"
	"testing"
)

// Alloc-reporting kernel benchmarks: the steady-state *Into paths must stay
// at 0 allocs/op (the BENCH_baseline.json trajectory tracks them).

func benchInputs(b *testing.B, dim, n int) ([]float64, []Gradient) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gs := make([]Gradient, n)
	for i := range gs {
		gs[i] = make(Gradient, dim)
		for j := range gs[i] {
			gs[i][j] = rng.NormFloat64()
		}
	}
	cs := make([]float64, n)
	for i := range cs {
		cs[i] = rng.NormFloat64()
	}
	return cs, gs
}

func BenchmarkEncodeInto(b *testing.B) {
	cs, ps := benchInputs(b, 100_000, 4)
	dst := make(Gradient, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeInto(dst, cs, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineInto(b *testing.B) {
	cs, gs := benchInputs(b, 100_000, 8)
	cs[3] = 0
	gs[3] = nil
	dst := make(Gradient, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CombineInto(dst, cs, gs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSumInto(b *testing.B) {
	_, gs := benchInputs(b, 100_000, 8)
	dst := make(Gradient, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SumInto(dst, gs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeNaiveReference measures the pre-kernel scalar loop for the
// speedup trajectory (same shape as BenchmarkEncodeInto).
func BenchmarkEncodeNaiveReference(b *testing.B) {
	cs, ps := benchInputs(b, 100_000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := encodeRef(cs, ps)
		_ = out
	}
}

func BenchmarkGetPutBuffer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := GetBuffer(100_000)
		PutBuffer(g)
	}
}
