package grad

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = rng.NormFloat64() * 1e-12 // tiny relative to the bulk
		case 2:
			v[i] = rng.NormFloat64() * 1e6
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func roundTrip(t *testing.T, c Codec, vec []float64) []float64 {
	t.Helper()
	buf, err := AppendQuantized(GetBytes(0), c, vec)
	if err != nil {
		t.Fatalf("%v encode: %v", c, err)
	}
	got, err := Dequantize(c, buf, len(vec))
	if err != nil {
		t.Fatalf("%v decode: %v", c, err)
	}
	PutBytes(buf)
	if len(got) != len(vec) {
		t.Fatalf("%v: decoded %d elements, want %d", c, len(got), len(vec))
	}
	return got
}

// TestLosslessCodecsBitExact: raw and delta must round-trip bit-for-bit,
// including negative zero, denormals and extreme magnitudes — these are the
// codecs the bit-identity acceptance runs rely on.
func TestLosslessCodecsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []Codec{CodecRaw, CodecDelta} {
		for _, n := range []int{1, 2, 63, 64, 65, 1000} {
			vec := randVec(rng, n)
			vec[0] = math.Copysign(0, -1)
			if n > 2 {
				vec[1] = 5e-324 // smallest denormal
				vec[2] = math.MaxFloat64
			}
			got := roundTrip(t, c, vec)
			for i := range vec {
				if math.Float64bits(got[i]) != math.Float64bits(vec[i]) {
					t.Fatalf("%v: element %d not bit-exact: %x vs %x", c, i,
						math.Float64bits(got[i]), math.Float64bits(vec[i]))
				}
			}
		}
	}
}

// TestFP16RelativeError: the headline ≤1e-3 bound — every element within
// 1e-3 of the vector's max magnitude (fp16 achieves 2⁻¹¹ ≈ 4.9e-4).
func TestFP16RelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(512)
		vec := randVec(rng, n)
		got := roundTrip(t, CodecFP16, vec)
		scale := maxAbs(vec)
		if scale == 0 {
			scale = 1
		}
		for i := range vec {
			if err := math.Abs(got[i] - vec[i]); err > 1e-3*scale {
				t.Fatalf("trial %d element %d: |%g - %g| = %g > 1e-3·%g",
					trial, i, got[i], vec[i], err, scale)
			}
		}
	}
}

// TestInt8PerChunkError: each 64-element chunk's error is bounded by half a
// quantization step of that chunk's own scale (maxabs/254) — the documented
// trade-off for the ~7.5× bandwidth win.
func TestInt8PerChunkError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(512)
		vec := randVec(rng, n)
		got := roundTrip(t, CodecInt8, vec)
		for off := 0; off < n; off += int8ChunkLen {
			end := off + int8ChunkLen
			if end > n {
				end = n
			}
			mx := maxAbs(vec[off:end])
			// The scale itself is rounded to float32; allow that rounding on
			// top of the half-step bound.
			bound := mx/254 + mx*1e-6
			for i := off; i < end; i++ {
				if err := math.Abs(got[i] - vec[i]); err > bound {
					t.Fatalf("trial %d element %d: err %g > %g (chunk max %g)",
						trial, i, err, bound, mx)
				}
			}
		}
	}
}

// TestTopKExactSparse: the kept quarter is bit-exact, everything else is
// zero, and the kept set really is the top-k by magnitude.
func TestTopKExactSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(512)
		vec := randVec(rng, n)
		got := roundTrip(t, CodecTopK, vec)
		k := topKCount(n)
		kept, minKept, maxDropped := 0, math.Inf(1), 0.0
		for i := range vec {
			if math.Float64bits(got[i]) == math.Float64bits(vec[i]) && got[i] != 0 {
				kept++
				if a := math.Abs(vec[i]); a < minKept {
					minKept = a
				}
			} else if got[i] == 0 {
				if a := math.Abs(vec[i]); a > maxDropped {
					maxDropped = a
				}
			} else {
				t.Fatalf("trial %d element %d: %g is neither kept exactly nor zero (want %g)",
					trial, i, got[i], vec[i])
			}
		}
		if kept > k {
			t.Fatalf("trial %d: kept %d > k=%d", trial, kept, k)
		}
		if kept < k {
			// Only possible when some of the top-k are exact zeros.
			nonzero := 0
			for _, v := range vec {
				if v != 0 {
					nonzero++
				}
			}
			if kept < k && kept < nonzero {
				t.Fatalf("trial %d: kept %d of k=%d with %d nonzero", trial, kept, k, nonzero)
			}
		}
		if kept > 0 && maxDropped > minKept {
			t.Fatalf("trial %d: dropped |%g| but kept |%g|", trial, maxDropped, minKept)
		}
	}
}

// TestQuantizedSizes pins the bandwidth claims: int8 ≥ 2× smaller than raw
// (the acceptance bound; it is ~7.5×), fp16 ≈ 4× smaller.
func TestQuantizedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4096
	vec := randVec(rng, n)
	sizes := map[Codec]int{}
	for _, c := range []Codec{CodecRaw, CodecFP16, CodecInt8, CodecTopK} {
		buf, err := AppendQuantized(nil, c, vec)
		if err != nil {
			t.Fatal(err)
		}
		sizes[c] = len(buf)
	}
	if sizes[CodecRaw] != 8*n {
		t.Fatalf("raw size %d, want %d", sizes[CodecRaw], 8*n)
	}
	if 2*sizes[CodecInt8] > sizes[CodecRaw] {
		t.Fatalf("int8 payload %d B not ≥2× smaller than raw %d B", sizes[CodecInt8], sizes[CodecRaw])
	}
	if 2*sizes[CodecFP16] > sizes[CodecRaw] {
		t.Fatalf("fp16 payload %d B not ≥2× smaller than raw %d B", sizes[CodecFP16], sizes[CodecRaw])
	}
	if 2*sizes[CodecTopK] > sizes[CodecRaw] {
		t.Fatalf("topk payload %d B not ≥2× smaller than raw %d B", sizes[CodecTopK], sizes[CodecRaw])
	}
}

// TestDequantizeRejectsCorruption: wrong lengths, trailing bytes, bad scales
// and out-of-range sparse indices must all reject with ErrQuant — never
// panic, never a silent mis-decode.
func TestDequantizeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vec := randVec(rng, 100)
	for _, c := range []Codec{CodecRaw, CodecFP16, CodecInt8, CodecTopK, CodecDelta} {
		buf, err := AppendQuantized(nil, c, vec)
		if err != nil {
			t.Fatal(err)
		}
		cases := map[string][]byte{
			"truncated": buf[:len(buf)/2],
			"trailing":  append(append([]byte(nil), buf...), 0xff),
			"empty":     nil,
		}
		for name, p := range cases {
			if _, err := Dequantize(c, p, len(vec)); !errors.Is(err, ErrQuant) {
				t.Fatalf("%v %s: err = %v, want ErrQuant", c, name, err)
			}
		}
		// Wrong element count for an otherwise valid payload. TopK is exempt:
		// a sparse payload stays decodable under a larger n by design (the
		// envelope's element count is authoritative there).
		if c != CodecTopK {
			if _, err := Dequantize(c, buf, len(vec)+1); !errors.Is(err, ErrQuant) {
				t.Fatalf("%v n+1: err = %v, want ErrQuant", c, err)
			}
		}
	}
	if _, err := Dequantize(Codec(99), []byte{1}, 1); !errors.Is(err, ErrQuant) {
		t.Fatalf("unknown codec: err = %v, want ErrQuant", err)
	}
	if _, err := AppendQuantized(nil, Codec(99), vec); !errors.Is(err, ErrQuant) {
		t.Fatalf("unknown codec encode: err = %v, want ErrQuant", err)
	}
	if _, err := Dequantize(CodecRaw, nil, -1); !errors.Is(err, ErrQuant) {
		t.Fatalf("negative n: err = %v, want ErrQuant", err)
	}
	// A non-finite fp16 scale is rejected.
	bad, _ := AppendQuantized(nil, CodecFP16, vec)
	for i := 0; i < 8; i++ {
		bad[i] = 0xff // NaN scale
	}
	if _, err := Dequantize(CodecFP16, bad, len(vec)); !errors.Is(err, ErrQuant) {
		t.Fatalf("NaN fp16 scale: err = %v, want ErrQuant", err)
	}
	// A topk index gap past the end is rejected.
	tk, _ := AppendQuantized(nil, CodecTopK, []float64{1, 2, 3, 4})
	tk[4] = 0xf0 // first index varint: huge gap
	tk = tk[:5+8]
	if _, err := Dequantize(CodecTopK, tk, 4); !errors.Is(err, ErrQuant) {
		t.Fatalf("topk bad index: err = %v, want ErrQuant", err)
	}
}

// TestCodecParseAndNames: the CLI name set round-trips.
func TestCodecParseAndNames(t *testing.T) {
	for _, c := range []Codec{CodecRaw, CodecFP16, CodecInt8, CodecTopK, CodecDelta} {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
		if !c.Valid() {
			t.Fatalf("%v not valid", c)
		}
	}
	if c, err := ParseCodec(""); err != nil || c != CodecRaw {
		t.Fatalf("empty name: %v, %v", c, err)
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if Codec(5).Valid() {
		t.Fatal("codec 5 reported valid")
	}
	for _, b := range AdvertiseCodecs() {
		if !Codec(b).Valid() || Codec(b) == CodecRaw {
			t.Fatalf("advertised codec %d invalid or raw", b)
		}
	}
}

// TestHalfConversionExhaustive: every half bit pattern converts to float64
// and back unchanged (NaNs compare by class), so fp16 decode is exact.
func TestHalfConversionExhaustive(t *testing.T) {
	for h := 0; h <= 0xffff; h++ {
		v := halfValue(uint16(h))
		back := halfBits(v)
		if math.IsNaN(v) {
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("half %#04x: NaN did not survive (back %#04x)", h, back)
			}
			continue
		}
		if back != uint16(h) {
			t.Fatalf("half %#04x → %g → %#04x", h, v, back)
		}
	}
}

// TestHalfRounding spot-checks round-to-nearest-even at the mantissa
// boundary.
func TestHalfRounding(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{1.0, 0x3c00},
		{-1.0, 0xbc00},
		{0.0, 0x0000},
		{65504, 0x7bff},                 // max finite half
		{65520, 0x7c00},                 // rounds up to Inf
		{1e9, 0x7c00},                   // overflow
		{math.Inf(1), 0x7c00},           // Inf
		{6.0e-8, 0x0001},                // subnormal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{1e-12, 0x0000},                 // underflow to zero
	}
	for _, c := range cases {
		if got := halfBits(c.in); got != c.want {
			t.Fatalf("halfBits(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

// TestBytePoolReuse: GetBytes returns recycled capacity without allocating.
func TestBytePoolReuse(t *testing.T) {
	b := GetBytes(1024)
	if len(b) != 0 || cap(b) < 1024 {
		t.Fatalf("GetBytes: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBytes(b)
	b2 := GetBytes(512)
	if cap(b2) < 1024 {
		t.Fatalf("pool did not recycle: cap=%d", cap(b2))
	}
	PutBytes(b2)
	PutBytes(nil) // must not panic
}

// TestTopKDeterministic: encoding is a pure function of the vector (the
// sort is stable), so two encodes agree byte-for-byte — required for the
// bit-identity comparisons.
func TestTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vec := randVec(rng, 257)
	a, _ := AppendQuantized(nil, CodecTopK, vec)
	b, _ := AppendQuantized(nil, CodecTopK, vec)
	if string(a) != string(b) {
		t.Fatal("topk encode not deterministic")
	}
	// Ties in magnitude resolve by index order (stable sort).
	tie := []float64{3, -3, 3, 1, 1, 1, 1, 1}
	got := roundTrip(t, CodecTopK, tie)
	want := []float64{3, -3, 0, 0, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break: got %v, want %v", got, want)
		}
	}
}
