package grad

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Naive reference implementations: the scalar loops the optimized kernels
// replaced. The property tests assert the fused/unrolled/chunked kernels
// match these within 1e-12 across random shapes.

func encodeRef(coeff []float64, partials []Gradient) Gradient {
	out := make(Gradient, len(partials[0]))
	for j, p := range partials {
		c := coeff[j]
		if c == 0 {
			continue
		}
		for i, v := range p {
			out[i] += c * v
		}
	}
	return out
}

func combineRef(coeffs []float64, coded []Gradient, dim int) Gradient {
	out := make(Gradient, dim)
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		for j, v := range coded[i] {
			out[j] += c * v
		}
	}
	return out
}

func sumRef(gs []Gradient) Gradient {
	out := make(Gradient, len(gs[0]))
	for _, g := range gs {
		for j, v := range g {
			out[j] += v
		}
	}
	return out
}

func randomGradients(rng *rand.Rand, n, dim int) []Gradient {
	gs := make([]Gradient, n)
	for i := range gs {
		gs[i] = make(Gradient, dim)
		for j := range gs[i] {
			gs[i][j] = rng.NormFloat64()
		}
	}
	return gs
}

func maxAbsDiff(a, b Gradient) float64 {
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// forceParallel raises GOMAXPROCS so fanout() takes the chunked goroutine
// path even on single-core CI machines; the cleanup restores it.
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

const propTol = 1e-12

func TestEncodePropertyMatchesNaive(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(42))
	// Dims straddle the parallel threshold; fan-ins straddle the 4-block and
	// the 32-entry stack scratch.
	dims := []int{1, 3, 17, 1000, parallelMinDim - 1, parallelMinDim + 3}
	for _, dim := range dims {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 33} {
			partials := randomGradients(rng, n, dim)
			coeff := make([]float64, n)
			for i := range coeff {
				coeff[i] = rng.NormFloat64()
				if rng.Intn(4) == 0 {
					coeff[i] = 0 // exercise the zero-coefficient skip
				}
			}
			want := encodeRef(coeff, partials)

			got, err := Encode(coeff, partials)
			if err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(got, want); d > propTol {
				t.Fatalf("dim=%d n=%d: Encode diverges from naive by %g", dim, n, d)
			}

			dst := GetBuffer(dim)
			if err := EncodeInto(dst, coeff, partials); err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(dst, want); d > propTol {
				t.Fatalf("dim=%d n=%d: EncodeInto diverges from naive by %g", dim, n, d)
			}
			PutBuffer(dst)
		}
	}
}

func TestEncodeAllZeroCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	partials := randomGradients(rng, 3, 50)
	coeff := []float64{0, 0, 0}
	dst := make(Gradient, 50)
	for i := range dst {
		dst[i] = 99 // stale contents must be overwritten
	}
	if err := EncodeInto(dst, coeff, partials); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d] = %g, want 0 for all-zero coefficients", i, v)
		}
	}
}

func TestCombinePropertyMatchesNaive(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(43))
	for _, dim := range []int{1, 5, 999, parallelMinDim + 1} {
		for _, n := range []int{1, 4, 7, 12} {
			coded := randomGradients(rng, n, dim)
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = rng.NormFloat64()
			}
			// Stragglers: nil gradients are fine when their coefficient is 0.
			if n > 2 {
				coeffs[1] = 0
				coded[1] = nil
			}
			want := combineRef(coeffs, coded, dim)

			got, err := Combine(coeffs, coded, dim)
			if err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(got, want); d > propTol {
				t.Fatalf("dim=%d n=%d: Combine diverges from naive by %g", dim, n, d)
			}

			dst := GetBuffer(dim)
			if err := CombineInto(dst, coeffs, coded); err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(dst, want); d > propTol {
				t.Fatalf("dim=%d n=%d: CombineInto diverges from naive by %g", dim, n, d)
			}
			PutBuffer(dst)
		}
	}
}

func TestCombineNilWithNonZeroCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	coded := randomGradients(rng, 3, 10)
	coded[2] = nil
	dst := make(Gradient, 10)
	if err := CombineInto(dst, []float64{1, 1, 0.5}, coded); err == nil {
		t.Fatal("want error for non-zero coefficient on nil gradient")
	}
	if _, err := Combine([]float64{1, 1, 0.5}, coded, 10); err == nil {
		t.Fatal("want error for non-zero coefficient on nil gradient")
	}
}

func TestSumPropertyMatchesNaive(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(45))
	for _, dim := range []int{1, 8, 1234, parallelMinDim + 5} {
		for _, n := range []int{1, 2, 4, 5, 9} {
			gs := randomGradients(rng, n, dim)
			want := sumRef(gs)

			got, err := Sum(gs)
			if err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(got, want); d > propTol {
				t.Fatalf("dim=%d n=%d: Sum diverges from naive by %g", dim, n, d)
			}

			dst := GetBuffer(dim)
			if err := SumInto(dst, gs); err != nil {
				t.Fatalf("dim=%d n=%d: %v", dim, n, err)
			}
			if d := maxAbsDiff(dst, want); d > propTol {
				t.Fatalf("dim=%d n=%d: SumInto diverges from naive by %g", dim, n, d)
			}
			PutBuffer(dst)
		}
	}
}

func TestIntoDimensionErrors(t *testing.T) {
	g5 := make(Gradient, 5)
	g6 := make(Gradient, 6)
	if err := EncodeInto(g5, []float64{1}, []Gradient{g6}); err == nil {
		t.Fatal("EncodeInto accepted mismatched dims")
	}
	if err := EncodeInto(g5, []float64{1, 2}, []Gradient{g5}); err == nil {
		t.Fatal("EncodeInto accepted mismatched coefficient count")
	}
	if err := EncodeInto(g5, nil, nil); err == nil {
		t.Fatal("EncodeInto accepted empty partials")
	}
	if err := CombineInto(g5, []float64{1}, []Gradient{g6}); err == nil {
		t.Fatal("CombineInto accepted mismatched dims")
	}
	if err := SumInto(g5, nil); err == nil {
		t.Fatal("SumInto accepted empty sum")
	}
	if err := SumInto(g5, []Gradient{g6}); err == nil {
		t.Fatal("SumInto accepted mismatched dims")
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	b := GetBuffer(128)
	if len(b) != 128 {
		t.Fatalf("len = %d", len(b))
	}
	b[0] = 7
	PutBuffer(b)
	b2 := GetBuffer(64)
	if cap(b2) < 64 {
		t.Fatalf("cap = %d", cap(b2))
	}
	PutBuffer(b2)
	// nil round-trips silently.
	PutBuffer(nil)
	// Requesting more than any pooled buffer allocates fresh.
	big := GetBuffer(1 << 20)
	if len(big) != 1<<20 {
		t.Fatalf("len = %d", len(big))
	}
	PutBuffer(big)
}
