// Quantized gradient codecs: the wire-level encodings negotiated per
// connection by the transport layer. Each codec turns a float64 gradient
// vector into a compact byte payload and back. Raw and Delta are lossless
// (bit-exact round trips); FP16 and Int8 are bounded-error quantizers; TopK
// is sparse (exact on the kept coordinates, zero elsewhere). The package
// stays a leaf: encoders/decoders speak plain byte slices, and the pooled
// byte buffers mirror the gradient buffer pool so steady-state encode
// allocates nothing.
package grad

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ErrQuant marks a quantized payload that does not decode: wrong length,
// trailing bytes, out-of-range indices or a non-finite scale. The transport
// layer wraps it as ErrMalformed.
var ErrQuant = errors.New("grad: malformed quantized payload")

// Codec identifies a gradient wire codec. The zero value (CodecRaw) is the
// uncompressed float64 encoding every peer accepts — the fallback when a
// connection negotiates nothing.
type Codec byte

const (
	// CodecRaw is uncompressed little-endian float64 (8 B/elem, lossless).
	CodecRaw Codec = iota
	// CodecFP16 is IEEE half precision with one per-frame float64 scale
	// normalizing the max magnitude to 1 (2 B/elem, |err| ≤ 2⁻¹¹·maxabs).
	CodecFP16
	// CodecInt8 is linear int8 quantization with one float32 scale per
	// 64-element chunk (≈1.06 B/elem, per-chunk |err| ≤ maxabs/254).
	CodecInt8
	// CodecTopK keeps the n/4 largest-magnitude coordinates exactly
	// (delta-varint indices + full float64 values) and zeroes the rest.
	CodecTopK
	// CodecDelta XORs each element's bits with its predecessor's and
	// varint-encodes the result (lossless; small on smooth gradients).
	CodecDelta

	// NumCodecs is the number of defined codec bytes; anything ≥ NumCodecs
	// is malformed on the wire.
	NumCodecs = 5
)

// int8ChunkLen is the Int8 quantization granularity: one float32 scale per
// this many elements.
const int8ChunkLen = 64

// Valid reports whether c is a defined codec byte.
func (c Codec) Valid() bool { return c < NumCodecs }

// Lossless reports whether c round-trips bit-exactly.
func (c Codec) Lossless() bool { return c == CodecRaw || c == CodecDelta }

// String names the codec ("raw", "fp16", "int8", "topk", "delta").
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecFP16:
		return "fp16"
	case CodecInt8:
		return "int8"
	case CodecTopK:
		return "topk"
	case CodecDelta:
		return "delta"
	}
	return fmt.Sprintf("codec(%d)", byte(c))
}

// ParseCodec maps a codec name (as accepted by the -codec CLI flag) to its
// byte. The empty string parses as CodecRaw.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "raw":
		return CodecRaw, nil
	case "fp16":
		return CodecFP16, nil
	case "int8":
		return CodecInt8, nil
	case "topk":
		return CodecTopK, nil
	case "delta":
		return CodecDelta, nil
	}
	return CodecRaw, fmt.Errorf("grad: unknown codec %q (want raw, fp16, int8, topk or delta)", s)
}

// AdvertiseCodecs is the full non-raw codec set a current-version peer
// advertises in its hello (raw needs no advertisement — every peer accepts
// it).
func AdvertiseCodecs() []byte {
	return []byte{byte(CodecFP16), byte(CodecInt8), byte(CodecTopK), byte(CodecDelta)}
}

// CodecNames lists every defined codec's name indexed by its byte, for
// labeling per-codec metric families.
func CodecNames() []string {
	names := make([]string, NumCodecs)
	for i := range names {
		names[i] = Codec(i).String()
	}
	return names
}

// AppendQuantized appends the codec-c encoding of vec to dst and returns the
// extended slice. Pair with GetBytes/PutBytes for an allocation-free encode
// path.
func AppendQuantized(dst []byte, c Codec, vec []float64) ([]byte, error) {
	switch c {
	case CodecRaw:
		return appendRaw(dst, vec), nil
	case CodecFP16:
		return appendFP16(dst, vec), nil
	case CodecInt8:
		return appendInt8(dst, vec), nil
	case CodecTopK:
		return appendTopK(dst, vec), nil
	case CodecDelta:
		return appendDelta(dst, vec), nil
	}
	return dst, fmt.Errorf("%w: unknown codec %d", ErrQuant, byte(c))
}

// Dequantize decodes a codec-c payload of n elements into a fresh vector.
// The payload must be consumed exactly — truncated or over-long payloads,
// out-of-range sparse indices and non-finite scales are all ErrQuant.
func Dequantize(c Codec, payload []byte, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length %d", ErrQuant, n)
	}
	switch c {
	case CodecRaw:
		return decodeRaw(payload, n)
	case CodecFP16:
		return decodeFP16(payload, n)
	case CodecInt8:
		return decodeInt8(payload, n)
	case CodecTopK:
		return decodeTopK(payload, n)
	case CodecDelta:
		return decodeDelta(payload, n)
	}
	return nil, fmt.Errorf("%w: unknown codec %d", ErrQuant, byte(c))
}

// --- raw ---

func appendRaw(dst []byte, vec []float64) []byte {
	for _, v := range vec {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodeRaw(p []byte, n int) ([]float64, error) {
	if len(p) != 8*n {
		return nil, fmt.Errorf("%w: raw payload %d B for %d elements", ErrQuant, len(p), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

// --- fp16 ---

func appendFP16(dst []byte, vec []float64) []byte {
	scale := maxAbs(vec)
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		scale = 1
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(scale))
	inv := 1 / scale
	for _, v := range vec {
		dst = binary.LittleEndian.AppendUint16(dst, halfBits(v*inv))
	}
	return dst
}

func decodeFP16(p []byte, n int) ([]float64, error) {
	if len(p) != 8+2*n {
		return nil, fmt.Errorf("%w: fp16 payload %d B for %d elements", ErrQuant, len(p), n)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(p))
	if math.IsInf(scale, 0) || math.IsNaN(scale) || scale == 0 {
		return nil, fmt.Errorf("%w: fp16 scale %v", ErrQuant, scale)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = halfValue(binary.LittleEndian.Uint16(p[8+2*i:])) * scale
	}
	return out, nil
}

// --- int8 ---

func appendInt8(dst []byte, vec []float64) []byte {
	for off := 0; off < len(vec); off += int8ChunkLen {
		end := off + int8ChunkLen
		if end > len(vec) {
			end = len(vec)
		}
		chunk := vec[off:end]
		mx := maxAbs(chunk)
		var scale float64
		if mx > 0 && !math.IsInf(mx, 0) && !math.IsNaN(mx) {
			scale = mx / 127
		}
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(scale)))
		if scale == 0 {
			for range chunk {
				dst = append(dst, 0)
			}
			continue
		}
		// Re-read the rounded float32 scale so encode and decode agree on
		// the dequantization step exactly.
		s := float64(float32(scale))
		for _, v := range chunk {
			q := math.Round(v / s)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			dst = append(dst, byte(int8(q)))
		}
	}
	return dst
}

func int8PayloadLen(n int) int {
	chunks := (n + int8ChunkLen - 1) / int8ChunkLen
	return 4*chunks + n
}

func decodeInt8(p []byte, n int) ([]float64, error) {
	if len(p) != int8PayloadLen(n) {
		return nil, fmt.Errorf("%w: int8 payload %d B for %d elements", ErrQuant, len(p), n)
	}
	out := make([]float64, n)
	pos := 0
	for off := 0; off < n; off += int8ChunkLen {
		end := off + int8ChunkLen
		if end > n {
			end = n
		}
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(p[pos:])))
		pos += 4
		if math.IsInf(scale, 0) || math.IsNaN(scale) || scale < 0 {
			return nil, fmt.Errorf("%w: int8 scale %v", ErrQuant, scale)
		}
		for i := off; i < end; i++ {
			out[i] = float64(int8(p[pos])) * scale
			pos++
		}
	}
	return out, nil
}

// --- topk ---

// topKCount is the sparsity policy: keep a quarter of the coordinates, at
// least one.
func topKCount(n int) int {
	k := n / 4
	if k < 1 {
		k = 1
	}
	return k
}

func appendTopK(dst []byte, vec []float64) []byte {
	n := len(vec)
	k := topKCount(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Largest magnitudes first; NaN sorts last (abs(NaN) comparisons are
	// false, so NaN entries never displace finite ones).
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(vec[idx[a]]) > math.Abs(vec[idx[b]])
	})
	kept := append([]int(nil), idx[:k]...)
	sort.Ints(kept)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(k))
	prev := -1
	for _, i := range kept {
		dst = binary.AppendUvarint(dst, uint64(i-prev-1))
		prev = i
	}
	for _, i := range kept {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vec[i]))
	}
	return dst
}

func decodeTopK(p []byte, n int) ([]float64, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: topk payload too short", ErrQuant)
	}
	k := int(binary.LittleEndian.Uint32(p))
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: topk keeps %d of %d", ErrQuant, k, n)
	}
	p = p[4:]
	idx := make([]int, k)
	prev := -1
	for j := range idx {
		gap, m := binary.Uvarint(p)
		if m <= 0 {
			return nil, fmt.Errorf("%w: topk index varint", ErrQuant)
		}
		p = p[m:]
		i := prev + 1 + int(gap)
		if gap > uint64(n) || i >= n {
			return nil, fmt.Errorf("%w: topk index %d out of range", ErrQuant, i)
		}
		idx[j] = i
		prev = i
	}
	if len(p) != 8*k {
		return nil, fmt.Errorf("%w: topk values %d B for %d kept", ErrQuant, len(p), k)
	}
	out := make([]float64, n)
	for j, i := range idx {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*j:]))
	}
	return out, nil
}

// --- delta ---

func appendDelta(dst []byte, vec []float64) []byte {
	var prev uint64
	for _, v := range vec {
		b := math.Float64bits(v)
		dst = binary.AppendUvarint(dst, b^prev)
		prev = b
	}
	return dst
}

func decodeDelta(p []byte, n int) ([]float64, error) {
	out := make([]float64, n)
	var prev uint64
	for i := range out {
		x, m := binary.Uvarint(p)
		if m <= 0 {
			return nil, fmt.Errorf("%w: delta varint at element %d", ErrQuant, i)
		}
		p = p[m:]
		prev ^= x
		out[i] = math.Float64frombits(prev)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing delta bytes", ErrQuant, len(p))
	}
	return out, nil
}

func maxAbs(vec []float64) float64 {
	var mx float64
	for _, v := range vec {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// --- IEEE 754 half precision ---

// halfBits converts a float64 to IEEE half with round-to-nearest-even,
// saturating overflow to ±Inf and flushing underflow to ±0.
func halfBits(f float64) uint16 {
	b := math.Float32bits(float32(f))
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127
	frac := b & 0x7fffff
	switch {
	case exp == 128: // Inf or NaN
		if frac != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp > 15: // overflow
		return sign | 0x7c00
	case exp >= -14: // normal half
		m := uint16(frac >> 13)
		rem := frac & 0x1fff
		h := uint16(exp+15)<<10 | m
		// Round to nearest even; a carry correctly rolls into the exponent
		// (and saturates to Inf at the top binade).
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			h++
		}
		return sign | h
	case exp >= -24: // subnormal half
		s := uint32(-exp - 1) // 14..23
		m32 := frac | 0x800000
		m := m32 >> s
		rem := m32 & (1<<s - 1)
		half := uint32(1) << (s - 1)
		h := uint16(m)
		if rem > half || (rem == half && m&1 == 1) {
			h++
		}
		return sign | h
	}
	return sign // underflow to zero
}

// halfValue converts IEEE half bits to float64 exactly (every half value is
// representable).
func halfValue(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	frac := uint32(h & 0x3ff)
	var b uint32
	switch {
	case exp == 0x1f: // Inf or NaN
		b = sign | 0x7f800000 | frac<<13
	case exp == 0:
		if frac == 0 {
			b = sign
		} else { // subnormal: normalize into a float32
			e := uint32(113)
			for frac&0x400 == 0 {
				frac <<= 1
				e--
			}
			b = sign | e<<23 | (frac&0x3ff)<<13
		}
	default:
		b = sign | (exp+112)<<23 | frac<<13
	}
	return float64(math.Float32frombits(b))
}

// bytePool recycles codec payload buffers between iterations, mirroring the
// gradient buffer pool: a bounded freelist so Get/Put never allocate.
var bytePool = struct {
	mu   sync.Mutex
	bufs [][]byte
}{}

// maxPooledByteBufs bounds the byte freelist; beyond it PutBytes drops
// buffers for the GC.
const maxPooledByteBufs = 64

// GetBytes returns a zero-length byte slice with capacity ≥ n from the pool,
// for use as an AppendQuantized destination. Return it with PutBytes.
func GetBytes(n int) []byte {
	bytePool.mu.Lock()
	for i := len(bytePool.bufs) - 1; i >= 0; i-- {
		if b := bytePool.bufs[i]; cap(b) >= n {
			last := len(bytePool.bufs) - 1
			bytePool.bufs[i] = bytePool.bufs[last]
			bytePool.bufs[last] = nil
			bytePool.bufs = bytePool.bufs[:last]
			bytePool.mu.Unlock()
			return b[:0]
		}
	}
	bytePool.mu.Unlock()
	return make([]byte, 0, n)
}

// PutBytes recycles a buffer previously obtained from GetBytes (or any
// caller-owned byte slice no longer referenced). The caller must not use b
// afterwards.
func PutBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	bytePool.mu.Lock()
	if len(bytePool.bufs) < maxPooledByteBufs {
		bytePool.bufs = append(bytePool.bufs, b[:0])
	}
	bytePool.mu.Unlock()
}
