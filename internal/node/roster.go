// Package node assembles standalone cluster processes — a training root, a
// warm standby, a worker — from one declarative configuration. It is the
// layer the gcroot/gcworker binaries are built on: static discovery comes
// from a roster file, durability/HA/telemetry from the composable blocks in
// internal/clustercfg, and the runtime pieces (elastic master, checkpoint
// store, lease, standby, data plane) are wired together here instead of in
// every main().
package node

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
)

// ErrRoster marks an unusable roster file. Every error carries a remediation
// hint — a roster problem is an operator problem, and "parse error" alone
// sends them to the source code instead of the file.
var ErrRoster = errors.New("node: invalid roster")

// Roster is the static discovery plan of a cluster: who the root is, which
// standbys may replace it, and how many workers training waits for. One file
// is shared verbatim by every member of the cluster.
type Roster struct {
	// Root is the training root's listen address (host:port).
	Root string `json:"root"`
	// Standbys are warm-standby listen addresses, in promotion preference
	// order. A worker that loses the root tries these next.
	Standbys []string `json:"standbys"`
	// Workers is the expected worker count — the membership the root waits
	// for before training starts.
	Workers int `json:"workers"`
	// Metrics are the telemetry endpoints (host:port of each node's
	// -metrics-addr) the gcctl fleet aggregator scrapes. Optional: an empty
	// list just means gcctl has nothing to discover here. Order is free, but
	// listing the root's endpoint first makes dashboards read naturally.
	Metrics []string `json:"metrics,omitempty"`
}

// Addrs returns the worker's resolve order: the root first, then every
// standby.
func (r *Roster) Addrs() []string {
	return append([]string{r.Root}, r.Standbys...)
}

// Validate enforces the roster invariants shared by both file formats.
func (r *Roster) Validate() error {
	if r.Root == "" {
		return fmt.Errorf(`%w: no root address — add root = "host:port"`, ErrRoster)
	}
	seen := map[string]bool{}
	for _, addr := range r.Addrs() {
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return fmt.Errorf(`%w: address %q is not host:port (%v) — every member needs an explicit port`, ErrRoster, addr, err)
		}
		if seen[addr] {
			return fmt.Errorf("%w: address %q listed twice — each member needs its own listen address", ErrRoster, addr)
		}
		seen[addr] = true
	}
	if r.Workers <= 0 {
		return fmt.Errorf("%w: workers = %d — the expected worker count gates training start and must be positive", ErrRoster, r.Workers)
	}
	seenM := map[string]bool{}
	for _, addr := range r.Metrics {
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return fmt.Errorf(`%w: metrics address %q is not host:port (%v) — list each node's -metrics-addr endpoint`, ErrRoster, addr, err)
		}
		if seenM[addr] {
			return fmt.Errorf("%w: metrics address %q listed twice — each telemetry endpoint appears once", ErrRoster, addr)
		}
		seenM[addr] = true
	}
	return nil
}

// LoadRoster reads and parses a roster file (TOML or JSON, sniffed by
// content).
func LoadRoster(path string) (*Roster, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRoster, err)
	}
	r, err := ParseRoster(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// ParseRoster parses a roster from TOML (the documented format) or JSON
// (for generated files); a leading '{' selects JSON. Both formats reject
// unknown keys — a typo like "worker = 4" must fail loudly, not silently
// train with a default.
func ParseRoster(b []byte) (*Roster, error) {
	if bytes.HasPrefix(bytes.TrimLeft(b, " \t\r\n"), []byte("{")) {
		return parseJSONRoster(b)
	}
	return parseTOMLRoster(b)
}

func parseJSONRoster(b []byte) (*Roster, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	r := &Roster{}
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf(`%w: bad JSON (%v) — expected {"root": "host:port", "standbys": [...], "workers": n}`, ErrRoster, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: trailing content after the JSON object", ErrRoster)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// parseTOMLRoster parses the flat TOML subset the roster uses: top-level
// `key = value` lines where values are quoted strings, integers, or arrays
// of quoted strings. Comments (#) and blank lines are allowed; sections,
// multi-line values and everything else TOML are not — the roster is three
// keys, and a stricter parser gives better errors than a lenient one.
func parseTOMLRoster(b []byte) (*Roster, error) {
	r := &Roster{}
	seen := map[string]bool{}
	for i, raw := range strings.Split(string(b), "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		lineNo := i + 1
		if strings.HasPrefix(line, "[") {
			return nil, fmt.Errorf("%w: line %d: the roster has no sections — use top-level root, standbys, workers", ErrRoster, lineNo)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: expected key = value, got %q", ErrRoster, lineNo, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("%w: line %d: key %q set twice", ErrRoster, lineNo, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "root":
			r.Root, err = tomlString(val)
		case "standbys":
			r.Standbys, err = tomlStringArray(val)
		case "workers":
			r.Workers, err = strconv.Atoi(val)
			if err != nil {
				err = fmt.Errorf("workers must be an integer, got %q", val)
			}
		case "metrics":
			r.Metrics, err = tomlStringArray(val)
		default:
			err = fmt.Errorf("unknown key %q — the roster keys are root, standbys, workers, metrics", key)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrRoster, lineNo, err)
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// stripComment removes a trailing # comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i, c := range line {
		switch c {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func tomlString(val string) (string, error) {
	s, err := strconv.Unquote(val)
	if err != nil || !strings.HasPrefix(val, `"`) {
		return "", fmt.Errorf(`expected a quoted string, got %s`, val)
	}
	return s, nil
}

func tomlStringArray(val string) ([]string, error) {
	if !strings.HasPrefix(val, "[") || !strings.HasSuffix(val, "]") {
		return nil, fmt.Errorf(`expected an array like ["host:port", ...], got %s`, val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return nil, nil
	}
	var out []string
	for _, item := range strings.Split(inner, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("array has an empty element (trailing comma?)")
		}
		s, err := tomlString(item)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
