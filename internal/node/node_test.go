package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/clustercfg"
)

// clusterConfig builds a pinned-deterministic cluster config over dir.
func clusterConfig(dir string, workers, iters int) ClusterConfig {
	return ClusterConfig{
		Roster:       Roster{Root: "127.0.0.1:1", Workers: workers}, // placeholder; tests dial real addrs
		Listen:       "127.0.0.1:0",
		K:            8,
		S:            0,
		Iterations:   iters,
		Seed:         5,
		IterTimeout:  20 * time.Second,
		PinEstimates: true,
		DurabilityConfig: clustercfg.DurabilityConfig{
			CheckpointDir: dir,
			SnapshotEvery: 4,
		},
		HAConfig: clustercfg.HAConfig{LeaseTTL: 300 * time.Millisecond},
	}
}

// spawnWorkers starts n RunWorker loops resolving the root via the lease
// token in dir.
func spawnWorkers(t *testing.T, n int, rootAddr, dir string, stop chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = RunWorker(WorkerConfig{
				Roster:        Roster{Root: rootAddr, Workers: n},
				K:             8,
				Seed:          5,
				CheckpointDir: dir,
				DialTimeout:   500 * time.Millisecond,
				Delay:         func(int) time.Duration { return 10 * time.Millisecond },
			}, stop)
		}()
	}
}

// runUninterrupted trains the cluster to completion with no faults and
// returns the final parameters.
func runUninterrupted(t *testing.T, workers, iters int) []float64 {
	t.Helper()
	dir := t.TempDir()
	root, err := StartRoot(clusterConfig(dir, workers, iters), false)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	spawnWorkers(t, workers, root.Addr(), dir, stop, &wg)
	res, err := root.Run(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	return res.Params
}

// TestClusterFailoverBitIdentical is the node-level dress rehearsal of the
// process e2e: a root trains with wire-served shards, dies cold mid-run, a
// standby promotes and finishes — and the final parameters are bit-identical
// to an uninterrupted run of the same config.
func TestClusterFailoverBitIdentical(t *testing.T) {
	const workers, iters, killAfter = 4, 24, 8

	baseline := runUninterrupted(t, workers, iters)

	dir := t.TempDir()
	cfg := clusterConfig(dir, workers, iters)
	root, err := StartRoot(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	spawnWorkers(t, workers, root.Addr(), dir, stop, &wg)

	// The standby tails the same directory and takes over on lease lapse.
	sbCfg := cfg
	sbCfg.Holder = "standby-1"
	type sbResult struct {
		params []float64
		start  int
		err    error
	}
	sbCh := make(chan sbResult, 1)
	go func() {
		res, err := RunStandby(sbCfg, nil)
		if err != nil {
			sbCh <- sbResult{err: err}
			return
		}
		sbCh <- sbResult{params: res.Params, start: res.StartIter}
	}()

	go func() { _, _ = root.Run(15 * time.Second) }()

	// Kill the root cold once iteration killAfter is durable.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := checkpoint.Recover(dir)
		if err == nil && st.LastIter >= killAfter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("root never reached the kill iteration")
		}
		time.Sleep(5 * time.Millisecond)
	}
	root.Close()

	var sb sbResult
	select {
	case sb = <-sbCh:
	case <-time.After(60 * time.Second):
		t.Fatal("standby never finished")
	}
	if sb.err != nil {
		t.Fatal(sb.err)
	}
	if sb.start == 0 {
		t.Fatal("standby resumed at iteration 0 — it trained from scratch instead of promoting")
	}
	close(stop)
	wg.Wait()

	if len(sb.params) != len(baseline) {
		t.Fatalf("param dims differ: %d vs %d", len(sb.params), len(baseline))
	}
	for i := range baseline {
		if sb.params[i] != baseline[i] {
			t.Fatalf("param %d differs after failover: %v vs %v", i, sb.params[i], baseline[i])
		}
	}
}

func TestStartRootValidation(t *testing.T) {
	cases := []func(*ClusterConfig){
		func(c *ClusterConfig) { c.Roster.Workers = 0 },
		func(c *ClusterConfig) { c.K = 0 },
		func(c *ClusterConfig) { c.Iterations = 0 },
		func(c *ClusterConfig) { c.CheckpointDir = "" },
		func(c *ClusterConfig) { c.LeaseTTL = 0 },
	}
	for i, mutate := range cases {
		cfg := clusterConfig(t.TempDir(), 2, 4)
		mutate(&cfg)
		if _, err := StartRoot(cfg, false); err == nil {
			t.Fatalf("case %d: StartRoot accepted invalid config", i)
		}
	}
}

func TestRunWorkerValidation(t *testing.T) {
	if err := RunWorker(WorkerConfig{}, nil); !errors.Is(err, ErrRoster) {
		t.Fatalf("empty config err = %v, want ErrRoster", err)
	}
	err := RunWorker(WorkerConfig{Roster: Roster{Root: "127.0.0.1:1", Workers: 1}}, nil)
	if !errors.Is(err, ErrBadNode) {
		t.Fatalf("missing K err = %v, want ErrBadNode", err)
	}
	// A roster of dead addresses with bounded cycles fails with the dial
	// error instead of spinning forever.
	err = RunWorker(WorkerConfig{
		Roster:      Roster{Root: "127.0.0.1:1", Workers: 1},
		K:           4,
		MaxCycles:   2,
		DialTimeout: 100 * time.Millisecond,
	}, nil)
	if err == nil {
		t.Fatal("worker with unreachable roster returned nil")
	}
}

func TestElasticConfigAssembly(t *testing.T) {
	cfg := clusterConfig(t.TempDir(), 3, 12)
	ec, err := cfg.ElasticConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	if ec.K != 8 || ec.S != 0 || ec.Iterations != 12 || ec.MinWorkers != 3 || ec.Seed != 5 {
		t.Fatalf("assembled config = %+v", ec)
	}
	if ec.MinObservations != 1<<30 {
		t.Fatalf("pinned estimates not applied: MinObservations = %d", ec.MinObservations)
	}
	if ec.DurabilityConfig.CheckpointDir != cfg.CheckpointDir || ec.DurabilityConfig.Resume {
		t.Fatalf("durability block not threaded: dir=%q resume=%v",
			ec.DurabilityConfig.CheckpointDir, ec.DurabilityConfig.Resume)
	}
	if rec, err := cfg.ElasticConfig(true); err != nil || !rec.DurabilityConfig.Resume {
		t.Fatalf("resume not threaded: %+v, %v", rec.DurabilityConfig, err)
	}
	if ec.PartitionSource == nil {
		t.Fatal("workload partitions not wired into PartitionSource")
	}
	if _, err := cfg.ElasticConfig(true); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.K = -1
	if _, err := bad.ElasticConfig(false); !errors.Is(err, ErrBadNode) {
		t.Fatalf("invalid config err = %v, want ErrBadNode", err)
	}
}

func TestParamsDigestStableAndDiscriminating(t *testing.T) {
	a := ParamsDigest([]float64{1, 2, 3})
	if b := ParamsDigest([]float64{1, 2, 3}); b != a {
		t.Fatalf("digest not deterministic: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("digest %q is not 8 hex bytes", a)
	}
	if ParamsDigest([]float64{1, 2, 3.0000000001}) == a {
		t.Fatal("digest ignores a params perturbation")
	}
}

func TestStartIterFreshRoot(t *testing.T) {
	cfg := clusterConfig(t.TempDir(), 1, 4)
	root, err := StartRoot(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	if it := root.StartIter(); it != 0 {
		t.Fatalf("fresh root StartIter = %d, want 0", it)
	}
	if root.Addr() == "" {
		t.Fatal("root has no listen address")
	}
}
