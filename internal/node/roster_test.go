package node

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseRosterTOML(t *testing.T) {
	in := `
# three-machine quickstart
root = "10.0.0.1:7000"
standbys = ["10.0.0.2:7000", "10.0.0.3:7000"] # promotion order
workers = 4
`
	r, err := ParseRoster([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := &Roster{
		Root:     "10.0.0.1:7000",
		Standbys: []string{"10.0.0.2:7000", "10.0.0.3:7000"},
		Workers:  4,
	}
	if !reflect.DeepEqual(r, want) {
		t.Fatalf("roster = %+v, want %+v", r, want)
	}
	if got := r.Addrs(); len(got) != 3 || got[0] != want.Root {
		t.Fatalf("Addrs() = %v", got)
	}
}

func TestParseRosterJSON(t *testing.T) {
	in := `{"root": "127.0.0.1:9000", "standbys": ["127.0.0.1:9001"], "workers": 2}`
	r, err := ParseRoster([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Root != "127.0.0.1:9000" || len(r.Standbys) != 1 || r.Workers != 2 {
		t.Fatalf("roster = %+v", r)
	}
}

func TestParseRosterNoStandbys(t *testing.T) {
	r, err := ParseRoster([]byte("root = \"127.0.0.1:9000\"\nworkers = 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Standbys) != 0 {
		t.Fatalf("standbys = %v", r.Standbys)
	}
}

func TestParseRosterErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		hint string // remediation text the error must carry
	}{
		{"empty file", "", "no root address"},
		{"missing root", `workers = 4`, "no root address"},
		{"zero workers", "root = \"h:1\"\nworkers = 0", "must be positive"},
		{"negative workers", "root = \"h:1\"\nworkers = -2", "must be positive"},
		{"missing workers", `root = "h:1"`, "must be positive"},
		{"duplicate addr", "root = \"h:1\"\nstandbys = [\"h:1\"]\nworkers = 2", "listed twice"},
		{"duplicate standby", "root = \"h:1\"\nstandbys = [\"h:2\", \"h:2\"]\nworkers = 2", "listed twice"},
		{"no port", "root = \"justahost\"\nworkers = 2", "host:port"},
		{"unknown key", "root = \"h:1\"\nworkers = 2\nworker_count = 3", "unknown key"},
		{"section header", "[cluster]\nroot = \"h:1\"", "no sections"},
		{"unquoted string", "root = h:1\nworkers = 2", "quoted string"},
		{"bad array", "root = \"h:1\"\nstandbys = \"h:2\"\nworkers = 2", "array"},
		{"trailing comma", "root = \"h:1\"\nstandbys = [\"h:2\",]\nworkers = 2", "empty element"},
		{"non-integer workers", "root = \"h:1\"\nworkers = \"four\"", "integer"},
		{"duplicate key", "root = \"h:1\"\nroot = \"h:2\"\nworkers = 2", "set twice"},
		{"no equals", "root \"h:1\"\nworkers = 2", "key = value"},
		{"malformed json", `{"root": }`, "bad JSON"},
		{"unknown json key", `{"root": "h:1", "workers": 2, "standby": []}`, "bad JSON"},
		{"json trailing content", `{"root": "h:1", "workers": 2} extra`, "trailing content"},
		{"json zero workers", `{"root": "h:1", "workers": 0}`, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRoster([]byte(tc.in))
			if !errors.Is(err, ErrRoster) {
				t.Fatalf("err = %v, want ErrRoster", err)
			}
			if !strings.Contains(err.Error(), tc.hint) {
				t.Fatalf("error %q lacks remediation hint %q", err, tc.hint)
			}
		})
	}
}

func TestLoadRoster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roster.toml")
	if err := os.WriteFile(path, []byte("root = \"127.0.0.1:9000\"\nworkers = 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 3 {
		t.Fatalf("roster = %+v", r)
	}
	if _, err := LoadRoster(filepath.Join(dir, "absent.toml")); !errors.Is(err, ErrRoster) {
		t.Fatalf("missing file err = %v, want ErrRoster", err)
	}
	// The path shows up in parse failures so the operator knows which file.
	bad := filepath.Join(dir, "bad.toml")
	if err := os.WriteFile(bad, []byte("gibberish"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRoster(bad); err == nil || !strings.Contains(err.Error(), "bad.toml") {
		t.Fatalf("parse error %v does not name the file", err)
	}
}
