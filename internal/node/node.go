package node

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/transport"
)

// ErrBadNode marks an unusable node configuration.
var ErrBadNode = errors.New("node: invalid config")

// Workload is the training job a cluster runs: the model, its optimizer,
// and (on data-holding nodes) the dataset with its k partitions. The root
// holds Data/Parts and serves shards over the data plane; workers need only
// the Model.
type Workload struct {
	Model     ml.Model
	Optimizer ml.Optimizer
	Data      *ml.Dataset
	Parts     []*ml.Dataset
}

// DefaultWorkload builds the synthetic softmax workload the gcroot/gcworker
// binaries (and the process e2e) share: a seed-derived Gaussian mixture split
// into k partitions. The same (seed, k) always yields bit-identical data on
// every machine — which is what lets a worker that only knows the seed train
// against a root that holds the data.
func DefaultWorkload(seed int64, k int) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	data, err := ml.GaussianMixture(k*30, 8, 3, 3, rng)
	if err != nil {
		return nil, err
	}
	parts, err := data.Split(k)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Model:     &ml.Softmax{InputDim: 8, NumClasses: 3},
		Optimizer: &ml.SGD{LR: 0.5, Momentum: 0.5},
		Data:      data,
		Parts:     parts,
	}, nil
}

// ClusterConfig is the single declarative configuration a cluster node runs
// from: discovery (Roster), the training job (K/S/Iterations/Seed +
// Workload), and the composable durability/HA/telemetry blocks shared with
// every other run config in the repo.
type ClusterConfig struct {
	// Roster is the cluster's static discovery plan (see LoadRoster).
	Roster Roster
	// Listen is the address THIS node binds: the roster's root entry on the
	// root, the node's own standby entry on a standby. Empty defaults to
	// Roster.Root.
	Listen string
	// K is the partition count, S the straggler budget.
	K, S int
	// Scheme is the strategy family to plan: core.HeterAware (the default)
	// or core.GroupBased.
	Scheme core.Kind
	// Iterations is the training length.
	Iterations int
	// Seed drives workload synthesis and strategy construction.
	Seed int64
	// IterTimeout bounds one BSP iteration (default 30s).
	IterTimeout time.Duration
	// PinEstimates freezes the planner on the seeded initial strategy (no
	// drift replans, priors never warm). With S = 0 this makes a run's
	// parameter trajectory bit-deterministic — including across a root
	// failover — which is what the process e2e asserts.
	PinEstimates bool
	// Workload is the training job; nil selects DefaultWorkload(Seed, K).
	Workload *Workload

	// Durability, HA and telemetry (see internal/clustercfg and the matching
	// blocks on ElasticConfig). A cluster root requires CheckpointDir and
	// LeaseTTL: failover without a shared durable directory is not possible.
	clustercfg.DurabilityConfig
	clustercfg.HAConfig
	clustercfg.TelemetryConfig
	// Wire selects the gradient codec the root offers dialing workers
	// (negotiated per connection; see clustercfg.WireConfig).
	Wire clustercfg.WireConfig
}

// withDefaults validates and fills the config.
func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	if err := c.Roster.Validate(); err != nil {
		return c, err
	}
	if c.K <= 0 || c.S < 0 || c.Iterations <= 0 {
		return c, fmt.Errorf("%w: k=%d s=%d iterations=%d", ErrBadNode, c.K, c.S, c.Iterations)
	}
	if c.Listen == "" {
		c.Listen = c.Roster.Root
	}
	if c.IterTimeout <= 0 {
		c.IterTimeout = 30 * time.Second
	}
	if c.Workload == nil {
		w, err := DefaultWorkload(c.Seed, c.K)
		if err != nil {
			return c, fmt.Errorf("%w: workload: %v", ErrBadNode, err)
		}
		c.Workload = w
	}
	return c, nil
}

// elasticConfig assembles the runtime config for a (possibly resuming) root.
func (c ClusterConfig) elasticConfig(resume bool) runtime.ElasticConfig {
	w := c.Workload
	ec := runtime.ElasticConfig{
		K: c.K, S: c.S, Scheme: c.Scheme,
		Model:           w.Model,
		Optimizer:       w.Optimizer,
		InitialParams:   w.Model.InitParams(nil),
		Iterations:      c.Iterations,
		SampleCount:     w.Data.N(),
		IterTimeout:     c.IterTimeout,
		MinWorkers:      c.Roster.Workers,
		Seed:            c.Seed,
		PartitionSource: func(p int) (*ml.Dataset, error) { return w.Parts[p], nil },
	}
	if c.PinEstimates {
		// Estimates never warm past the uniform prior and drift can never
		// trip: every plan — including a promoted root's takeover plan — is
		// the seeded initial strategy.
		ec.MinObservations = 1 << 30
		ec.DriftThreshold = 1e18
	}
	ec.DurabilityConfig = c.DurabilityConfig
	ec.DurabilityConfig.Resume = resume
	ec.HAConfig = c.HAConfig
	ec.TelemetryConfig = c.TelemetryConfig
	ec.Wire = c.Wire
	return ec
}

// ElasticConfig validates the config and assembles the elastic runtime
// configuration it selects — the same assembly StartRoot uses, exported so
// in-process runners (gctrain) route their flag surface through ClusterConfig
// instead of duplicating the wiring. Job-reporting extras (LossFn,
// LossEvery) may be patched onto the returned value.
func (c ClusterConfig) ElasticConfig(resume bool) (runtime.ElasticConfig, error) {
	c, err := c.withDefaults()
	if err != nil {
		return runtime.ElasticConfig{}, err
	}
	return c.elasticConfig(resume), nil
}

// Root is a standalone training root: an elastic master listening on the
// roster's address, serving training-data shards over its data plane,
// checkpointing under the HA lease.
type Root struct {
	cfg    ClusterConfig
	master *runtime.ElasticMaster
}

// StartRoot builds the root and starts accepting workers on cfg.Listen.
// resume selects checkpoint recovery (a restarted or promoted root).
func StartRoot(cfg ClusterConfig, resume bool) (*Root, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointDir == "" || cfg.LeaseTTL <= 0 {
		return nil, fmt.Errorf("%w: a cluster root requires CheckpointDir and LeaseTTL (failover needs a durable directory and a lease)", ErrBadNode)
	}
	master, err := runtime.NewElasticMaster(cfg.elasticConfig(resume), cfg.Listen)
	if err != nil {
		return nil, err
	}
	return &Root{cfg: cfg, master: master}, nil
}

// Addr returns the address workers dial.
func (r *Root) Addr() string { return r.master.Addr() }

// StartIter returns the first iteration this root will run (non-zero after
// resume).
func (r *Root) StartIter() int { return r.master.StartIter() }

// Run waits for the roster's worker quorum, trains to completion and
// returns the result.
func (r *Root) Run(waitTimeout time.Duration) (*runtime.ElasticResult, error) {
	if err := r.master.WaitForWorkers(waitTimeout); err != nil {
		r.master.Close()
		return nil, err
	}
	return r.master.Run()
}

// Close tears the root down (cold).
func (r *Root) Close() { r.master.Close() }

// RunStandby tails the checkpoint directory until the active root's lease
// lapses, then promotes: it constructs a resumed root on cfg.Listen (the
// standby's own roster address) and trains the remaining iterations. A nil
// promotion (stop closed) returns (nil, nil).
func RunStandby(cfg ClusterConfig, stop <-chan struct{}) (*runtime.ElasticResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("%w: a standby requires CheckpointDir (it tails the root's durable state)", ErrBadNode)
	}
	sb := ha.NewStandby(ha.StandbyConfig{
		DurabilityConfig: clustercfg.DurabilityConfig{CheckpointDir: cfg.CheckpointDir},
	})
	prom, err := sb.Run(stop)
	if err != nil {
		return nil, err
	}
	if prom == nil {
		return nil, nil
	}
	// Promotion is the fencing act: acquiring the next generation is what
	// deposes the old root, so record both sides — the failover (the
	// promoted master's own Acquire claims Gen+1) and a fence event naming
	// the generation whose writes are dead from here on. The fleet
	// aggregator's merged timeline keys on this pair.
	last := -1
	if prom.State != nil {
		last = prom.State.LastIter
	}
	cfg.Obs.OnPromotion(uint64(prom.Deposed.Gen+1), last)
	cfg.Obs.Event(obs.Event{Kind: obs.EvFence, Iter: last,
		Detail: fmt.Sprintf("deposed root generation %d (%q)", prom.Deposed.Gen, prom.Deposed.Holder)})
	// The deposed root may never have written a checkpoint; a promotion over
	// an empty directory still resumes — Recover below the master handles the
	// fresh-vs-resumed distinction.
	resume := prom.State != nil
	root, err := StartRoot(cfg, resume)
	if err != nil {
		return nil, err
	}
	return root.Run(cfg.IterTimeout)
}

// WorkerConfig configures a standalone worker process.
type WorkerConfig struct {
	// Roster is the shared discovery plan; the worker dials the root first,
	// then each standby, cycling with backoff until one answers.
	Roster Roster
	// K and Seed must match the cluster's (they derive the workload).
	K    int
	Seed int64
	// Workload overrides the seed-derived default. Only Model is required on
	// a worker — with a nil PartitionData below, shards come over the wire.
	Workload *Workload
	// PartitionData, when non-nil, serves shards locally instead of fetching
	// them from the root's data plane.
	PartitionData func(p int) (*ml.Dataset, error)
	// CheckpointDir, when set AND visible from this machine (shared
	// storage), lets the worker re-resolve the live root from the lease
	// token — the authoritative address after a failover. Without it the
	// worker falls back to cycling the roster addresses.
	CheckpointDir string
	// Reconnect bounds each dial attempt sequence (defaults: 1 attempt per
	// address per cycle). The cycle itself repeats until the run ends.
	Reconnect runtime.ReconnectPolicy
	// DialTimeout bounds one dial (default 2s).
	DialTimeout time.Duration
	// Delay injects artificial per-iteration compute delay (fault/slowness
	// simulation; also what keeps the e2e's kill window open).
	Delay func(iter int) time.Duration
	// MaxCycles bounds full passes over the address list (0 = unbounded).
	MaxCycles int
	// Codec restricts what gradient codecs this worker advertises: "" offers
	// every codec the build knows (the master picks), "raw" forces raw
	// uploads (mimicking an un-upgraded worker), any other codec name offers
	// only that one.
	Codec string
}

// RunWorker runs the worker loop: resolve the root, dial, train until the
// connection drops, re-resolve and rejoin under the same member ID. It
// returns nil on a clean shutdown (the root finished training), or the last
// error once MaxCycles passes over the address list all failed.
func RunWorker(cfg WorkerConfig, stop <-chan struct{}) error {
	if err := cfg.Roster.Validate(); err != nil {
		return err
	}
	if cfg.Workload == nil {
		if cfg.K <= 0 {
			return fmt.Errorf("%w: worker needs K (and Seed) to derive its workload", ErrBadNode)
		}
		w, err := DefaultWorkload(cfg.Seed, cfg.K)
		if err != nil {
			return fmt.Errorf("%w: workload: %v", ErrBadNode, err)
		}
		cfg.Workload = w
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	var advertise []byte
	if cfg.Codec != "" {
		c, err := grad.ParseCodec(cfg.Codec)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		advertise = []byte{byte(c)}
	}
	resumeID := 0
	var lastErr error
	for cycle := 0; cfg.MaxCycles <= 0 || cycle < cfg.MaxCycles; cycle++ {
		for _, addr := range cfg.resolveOrder() {
			select {
			case <-stop:
				return nil
			default:
			}
			w, err := runtime.DialElasticWorker(addr, runtime.ElasticWorkerConfig{
				Model:         cfg.Workload.Model,
				PartitionData: cfg.PartitionData,
				Delay:         cfg.Delay,
				DialTimeout:   dialTimeout,
				ResumeID:      resumeID,
				Reconnect:     cfg.Reconnect,
				Codecs:        advertise,
			})
			if err != nil {
				lastErr = err
				continue
			}
			resumeID = w.ID()
			if err := w.Run(); err == nil {
				return nil // MsgShutdown: training finished
			} else {
				lastErr = err
			}
			// Connection lost mid-run: the root died or we were fenced.
			// Restart the resolve cycle from the top — the lease token (or
			// the roster order) names the successor.
			break
		}
		// Brief pause between cycles so a dead cluster does not spin.
		select {
		case <-stop:
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no address in the roster answered", ErrBadNode)
	}
	return lastErr
}

// resolveOrder returns the addresses to try this cycle: the lease token's
// address first when the checkpoint directory is readable from here (it is
// authoritative — it always names the live generation's root), then the
// roster's static order.
func (cfg WorkerConfig) resolveOrder() []string {
	addrs := cfg.Roster.Addrs()
	if cfg.CheckpointDir == "" {
		return addrs
	}
	tok, err := ha.ReadToken(cfg.CheckpointDir)
	if err != nil || tok.Addr == "" {
		return addrs
	}
	out := []string{tok.Addr}
	for _, a := range addrs {
		if a != tok.Addr {
			out = append(out, a)
		}
	}
	return out
}

// ParamsDigest returns a short hex digest of a parameter vector — what the
// gcroot binary prints on completion so an operator (or the process e2e) can
// compare two runs for bit-identity without shipping the vectors around.
func ParamsDigest(params []float64) string {
	var buf []byte
	buf = transport.AppendFloat64s(buf, params)
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}
