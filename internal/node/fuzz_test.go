// Fuzz coverage for the roster file parser: whatever an operator (or a
// truncated copy, or a file in the wrong format entirely) feeds ParseRoster,
// it must either return a roster that passes Validate or an error wrapping
// ErrRoster — never panic, never hand back a roster the cluster cannot use.
//
// CI runs a short -fuzz smoke over this target (make fuzz-smoke); the seed
// corpus alone also runs as a regular test.
package node

import (
	"errors"
	"testing"
)

func FuzzRoster(f *testing.F) {
	seeds := []string{
		"root = \"10.0.0.1:7000\"\nstandbys = [\"10.0.0.2:7000\"]\nworkers = 4\n",
		"# comment only\n",
		"root = \"h:1\"\nworkers = 2\n",
		`{"root": "127.0.0.1:9000", "standbys": ["127.0.0.1:9001"], "workers": 2}`,
		`{"root": 3}`,
		"[section]\n",
		"root = h:1",
		"standbys = [\"a\",]",
		"workers = 99999999999999999999",
		"root = \"h:1\" # trailing\nworkers = 1\n",
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseRoster(data)
		if err != nil {
			if !errors.Is(err, ErrRoster) {
				t.Fatalf("error %v does not wrap ErrRoster", err)
			}
			return
		}
		if verr := r.Validate(); verr != nil {
			t.Fatalf("ParseRoster returned an invalid roster %+v: %v", r, verr)
		}
	})
}
