// Package cliflags holds the flag block shared by every cluster-aware
// binary: gctrain, gcroot and gcworker all take the same durability, HA and
// telemetry flags with the same names, defaults and cross-flag rules. One
// registration site keeps `gcroot -checkpoint-dir` and `gctrain
// -checkpoint-dir` from drifting apart, and one Validate keeps the
// remediation hints identical across binaries.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/obs"
)

// Cluster is the parsed shared block. Zero values disable each subsystem,
// matching the zero values of the clustercfg blocks they map onto.
type Cluster struct {
	CheckpointDir string
	SnapshotEvery int
	LeaseTTL      time.Duration
	MetricsAddr   string
	Trace         bool
	Codec         string
}

// Register installs the shared flags on fs. The names and help strings are
// the contract: they must read identically in every binary's -h output.
func Register(fs *flag.FlagSet, c *Cluster) {
	fs.StringVar(&c.CheckpointDir, "checkpoint-dir", "", "durable-state directory (journal + snapshots); enables the elastic runtime")
	fs.IntVar(&c.SnapshotEvery, "snapshot-every", 5, "snapshot cadence in iterations (with -checkpoint-dir)")
	fs.DurationVar(&c.LeaseTTL, "lease-ttl", 0, "hold the HA root lease over -checkpoint-dir with this TTL (0 disables)")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve live telemetry on this host:port (/metrics, /healthz, /debug/events, /debug/trace, /debug/stragglers, /debug/pprof/); uses the elastic runtime")
	fs.BoolVar(&c.Trace, "trace", false, "stream per-iteration phase traces to stderr as JSON lines; uses the elastic runtime")
	fs.StringVar(&c.Codec, "codec", "", "preferred gradient wire codec (raw, fp16, int8, topk, delta); negotiated per connection, peers that do not advertise it fall back to raw")
}

// Validate enforces the cross-flag rules every binary shares.
func (c *Cluster) Validate() error {
	if c.LeaseTTL < 0 {
		return errors.New("-lease-ttl must be positive")
	}
	if c.LeaseTTL > 0 && c.CheckpointDir == "" {
		return errors.New("-lease-ttl requires -checkpoint-dir (the lease lives in the checkpoint directory)")
	}
	if c.Codec != "" {
		if _, err := grad.ParseCodec(c.Codec); err != nil {
			return fmt.Errorf("-codec: %w", err)
		}
	}
	return nil
}

// Wire returns the gradient-codec block the flags select.
func (c *Cluster) Wire() clustercfg.WireConfig {
	return clustercfg.WireConfig{Codec: c.Codec}
}

// Durability returns the durability block the flags select.
func (c *Cluster) Durability() clustercfg.DurabilityConfig {
	return clustercfg.DurabilityConfig{
		CheckpointDir: c.CheckpointDir,
		SnapshotEvery: c.SnapshotEvery,
	}
}

// HA returns the high-availability block the flags select, naming this node
// holder in the lease token.
func (c *Cluster) HA(holder string) clustercfg.HAConfig {
	return clustercfg.HAConfig{LeaseTTL: c.LeaseTTL, Holder: holder}
}

// StartTelemetry builds the telemetry the flags ask for: a metrics bundle
// when either -metrics-addr or -trace is set, an HTTP server when
// -metrics-addr is set, a stderr trace stream when -trace is set. The caller
// owns the returned server (may be nil) and must Close it; a nil Metrics
// means telemetry is off. stderr receives the trace stream, status the
// one-line "telemetry on ..." banner (either may be nil to discard).
func (c *Cluster) StartTelemetry(stderr, status io.Writer) (*obs.Metrics, *obs.Server, error) {
	if c.MetricsAddr == "" && !c.Trace {
		return nil, nil, nil
	}
	m := obs.New()
	if c.Trace && stderr != nil {
		m.Tracer().Stream(stderr)
	}
	if c.MetricsAddr == "" {
		return m, nil, nil
	}
	srv, err := obs.NewServer(c.MetricsAddr, m)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry server: %w", err)
	}
	if status != nil {
		fmt.Fprintf(status, "telemetry on %s/metrics (events at /debug/events, traces at /debug/trace, stragglers at /debug/stragglers, pprof at /debug/pprof/)\n", srv.URL())
	}
	return m, srv, nil
}
