package cliflags

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) *Cluster {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var c Cluster
	Register(fs, &c)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestRegisterParsesSharedBlock(t *testing.T) {
	c := parse(t,
		"-checkpoint-dir", "/tmp/ckpt",
		"-snapshot-every", "7",
		"-lease-ttl", "2s",
		"-metrics-addr", "127.0.0.1:9090",
		"-trace")
	if c.CheckpointDir != "/tmp/ckpt" || c.SnapshotEvery != 7 ||
		c.LeaseTTL != 2*time.Second || c.MetricsAddr != "127.0.0.1:9090" || !c.Trace {
		t.Fatalf("parsed block = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCrossFlagRules(t *testing.T) {
	if err := parse(t, "-lease-ttl", "-1s").Validate(); err == nil || !strings.Contains(err.Error(), "-lease-ttl") {
		t.Fatalf("negative ttl: %v", err)
	}
	if err := parse(t, "-lease-ttl", "2s").Validate(); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("lease without dir: %v", err)
	}
	if err := parse(t).Validate(); err != nil {
		t.Fatalf("zero block must validate: %v", err)
	}
}

func TestConfigBlocks(t *testing.T) {
	c := parse(t, "-checkpoint-dir", "/d", "-snapshot-every", "3", "-lease-ttl", "1s")
	if d := c.Durability(); d.CheckpointDir != "/d" || d.SnapshotEvery != 3 || d.Resume {
		t.Fatalf("durability block = %+v", d)
	}
	if h := c.HA("node-7"); h.LeaseTTL != time.Second || h.Holder != "node-7" {
		t.Fatalf("ha block = %+v", h)
	}
}

func TestStartTelemetryOff(t *testing.T) {
	m, srv, err := parse(t).StartTelemetry(nil, nil)
	if m != nil || srv != nil || err != nil {
		t.Fatalf("zero block telemetry = %v, %v, %v", m, srv, err)
	}
}

func TestStartTelemetryTraceOnly(t *testing.T) {
	m, srv, err := parse(t, "-trace").StartTelemetry(io.Discard, nil)
	if err != nil || m == nil || srv != nil {
		t.Fatalf("trace-only telemetry = %v, %v, %v", m, srv, err)
	}
}

func TestStartTelemetryServes(t *testing.T) {
	var status bytes.Buffer
	m, srv, err := parse(t, "-metrics-addr", "127.0.0.1:0").StartTelemetry(nil, &status)
	if err != nil || m == nil || srv == nil {
		t.Fatalf("telemetry = %v, %v, %v", m, srv, err)
	}
	defer srv.Close()
	if !strings.Contains(status.String(), srv.URL()) {
		t.Fatalf("status banner %q does not name the server", status.String())
	}
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
