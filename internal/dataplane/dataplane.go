// Package dataplane moves training-data shards over the wire. In the
// single-machine runtimes every worker holds its partitions in memory; a real
// cluster cannot assume that, so the master exposes the k global partitions
// D_1…D_k and remote workers fetch exactly the shards their gradient-coding
// assignment names — and re-fetch after a migration hands them new ones.
//
// The layering mirrors the rest of the repo: datasets are encoded with the
// compact float codec from internal/transport, integrity-framed with the
// CRC-32 record format from internal/checkpoint (so a flipped bit surfaces as
// checkpoint.ErrCorrupt, not a silently wrong gradient), and shipped as
// MsgPartition chunk frames over an ordinary transport.Conn.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// magic identifies an encoded dataset blob; the trailing byte is a format
// version so a future layout change fails loudly instead of misdecoding.
const magic = "HGCD\x01"

// DefaultChunkLen is the wire chunk size for partition blobs: large enough
// that a typical shard ships in a handful of frames, small enough that a
// single frame never dominates a connection.
const DefaultChunkLen = 512 << 10

// maxEncodedLen caps a decoded partition blob, matching the transport-layer
// blob cap so anything a peer could deliver is also decodable.
const maxEncodedLen = 1 << 30

// maxClasses bounds the class count of a decoded dataset — a sanity cap far
// above any workload here, guarding the allocation path against corruption
// that survives the CRC (e.g. a hostile peer re-framing garbage).
const maxClasses = 1 << 20

// ErrNotServed is returned by Client.Fetch when the master answered with the
// not-served marker: the partition index is out of range or the master has no
// data source configured.
var ErrNotServed = errors.New("dataplane: partition not served")

// ErrProtocol is returned when a peer sends a frame the data-plane session
// does not allow (wrong type, wrong partition index, bad chunk sequence).
var ErrProtocol = errors.New("dataplane: protocol violation")

// EncodeDataset serializes d as magic + sample/dim/class counts + row-major
// features + labels, wrapped in a CRC-32 record. The blob is self-contained:
// DecodeDataset needs no side information.
func EncodeDataset(d *ml.Dataset) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil dataset", ml.ErrBadData)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, dim := d.N(), d.Dim()
	payload := make([]byte, 0, len(magic)+3*binary.MaxVarintLen64+8*(n*dim+n))
	payload = append(payload, magic...)
	payload = binary.AppendUvarint(payload, uint64(n))
	payload = binary.AppendUvarint(payload, uint64(dim))
	payload = binary.AppendUvarint(payload, uint64(d.Classes))
	for _, row := range d.Features {
		payload = transport.AppendFloat64s(payload, row)
	}
	payload = transport.AppendFloat64s(payload, d.Labels)
	return checkpoint.AppendFrame(nil, payload), nil
}

// DecodeDataset reverses EncodeDataset. Corruption anywhere — CRC mismatch,
// truncation, bad magic, trailing bytes, impossible counts — is reported
// wrapping checkpoint.ErrCorrupt before any large allocation happens.
func DecodeDataset(b []byte) (*ml.Dataset, error) {
	payload, rest, err := checkpoint.ReadFrame(b, maxEncodedLen)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after dataset frame", checkpoint.ErrCorrupt, len(rest))
	}
	if len(payload) < len(magic) || string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: dataset blob missing magic", checkpoint.ErrCorrupt)
	}
	payload = payload[len(magic):]
	var counts [3]int
	for i := range counts {
		v, w := binary.Uvarint(payload)
		if w <= 0 || v > maxEncodedLen {
			return nil, fmt.Errorf("%w: dataset header count %d unreadable", checkpoint.ErrCorrupt, i)
		}
		counts[i] = int(v)
		payload = payload[w:]
	}
	n, dim, classes := counts[0], counts[1], counts[2]
	if classes > maxClasses {
		return nil, fmt.Errorf("%w: %d classes exceeds cap %d", checkpoint.ErrCorrupt, classes, maxClasses)
	}
	// The payload length is fully determined by the header; verify before
	// trusting n*dim for allocation.
	want := 8 * (int64(n)*int64(dim) + int64(n))
	if int64(len(payload)) != want {
		return nil, fmt.Errorf("%w: dataset payload %d bytes, header implies %d", checkpoint.ErrCorrupt, len(payload), want)
	}
	d := &ml.Dataset{Features: make([][]float64, n), Classes: classes}
	for i := range d.Features {
		row, rest, err := transport.ReadFloat64s(payload, dim)
		if err != nil {
			return nil, fmt.Errorf("%w: dataset row %d: %v", checkpoint.ErrCorrupt, i, err)
		}
		d.Features[i], payload = row, rest
	}
	labels, _, err := transport.ReadFloat64s(payload, n)
	if err != nil {
		return nil, fmt.Errorf("%w: dataset labels: %v", checkpoint.ErrCorrupt, err)
	}
	d.Labels = labels
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: decoded dataset invalid: %v", checkpoint.ErrCorrupt, err)
	}
	return d, nil
}

// Source serves the k global partitions of a training run, caching each
// encoded blob after first use so repeated fetches (worker churn, migrations,
// root failover) cost one encode per partition for the life of the run.
type Source struct {
	mu    sync.Mutex
	fetch func(p int) (*ml.Dataset, error)
	k     int
	blobs map[int][]byte
}

// NewSource wraps fetch, which must return partition p of the global dataset
// for p in [0, k). fetch is called at most once per partition.
func NewSource(fetch func(p int) (*ml.Dataset, error), k int) *Source {
	return &Source{fetch: fetch, k: k, blobs: make(map[int][]byte)}
}

// K returns the number of partitions served.
func (s *Source) K() int { return s.k }

// Blob returns the encoded form of partition p, encoding and caching it on
// first request. Out-of-range indices and fetch failures are errors — the
// serve loop turns them into the not-served wire marker.
func (s *Source) Blob(p int) ([]byte, error) {
	if p < 0 || p >= s.k {
		return nil, fmt.Errorf("%w: partition %d of %d", ErrNotServed, p, s.k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[p]; ok {
		return b, nil
	}
	d, err := s.fetch(p)
	if err != nil {
		return nil, fmt.Errorf("dataplane: partition %d source: %w", p, err)
	}
	b, err := EncodeDataset(d)
	if err != nil {
		return nil, fmt.Errorf("dataplane: partition %d encode: %w", p, err)
	}
	s.blobs[p] = b
	return b, nil
}

// Answer replies to one MsgPartitionReq: the requested partition as a
// chunked MsgPartition sequence from blob, or the not-served marker
// (Chunks == 0, empty Blob) when blob errors. chunkLen <= 0 selects
// DefaultChunkLen. The returned error is a transport failure (or a protocol
// violation by the requester) — a blob miss is answered, not returned.
func Answer(conn *transport.Conn, req *transport.Envelope, blob func(p int) ([]byte, error), chunkLen int) error {
	if req.Type != transport.MsgPartitionReq {
		return fmt.Errorf("%w: %v frame on data-plane session", ErrProtocol, req.Type)
	}
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	b, err := blob(req.Part)
	if err != nil {
		return conn.Send(&transport.Envelope{Type: transport.MsgPartition, Part: req.Part})
	}
	return conn.SendBatch(transport.ChunkBlob(transport.Envelope{Part: req.Part}, b, chunkLen))
}

// Serve answers MsgPartitionReq frames on conn until the peer hangs up. A
// clean peer close (or the server closing the conn itself during shutdown)
// returns nil.
func Serve(conn *transport.Conn, blob func(p int) ([]byte, error), chunkLen int) error {
	for {
		env, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := Answer(conn, env, blob, chunkLen); err != nil {
			return err
		}
	}
}

// Client fetches partitions from a master's data plane. The underlying
// connection is dialed lazily and kept for the client's lifetime; a transport
// error mid-fetch tears it down and retries once on a fresh dial, so a master
// restart between fetches is invisible to the caller.
type Client struct {
	mu      sync.Mutex
	addr    string
	timeout time.Duration
	conn    *transport.Conn
}

// NewClient returns a client for the data plane at addr. timeout bounds each
// dial and each whole fetch (request through final chunk).
func NewClient(addr string, timeout time.Duration) *Client {
	return &Client{addr: addr, timeout: timeout}
}

// Fetch retrieves and decodes partition p. ErrNotServed reports the master's
// explicit refusal and is not retried; transport failures get one retry on a
// fresh connection.
func (c *Client) Fetch(p int) (*ml.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.fetchOnce(p)
	if err == nil || errors.Is(err, ErrNotServed) {
		return d, err
	}
	c.closeLocked()
	return c.fetchOnce(p)
}

// Close releases the client's connection, if any.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
	return nil
}

func (c *Client) closeLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *Client) fetchOnce(p int) (*ml.Dataset, error) {
	if c.conn == nil {
		conn, err := transport.Dial(c.addr, c.timeout)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.conn.Send(&transport.Envelope{Type: transport.MsgPartitionReq, Part: p}); err != nil {
		return nil, err
	}
	first, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if first.Type != transport.MsgPartition || first.Part != p {
		return nil, fmt.Errorf("%w: got %v part %d, want partition %d", ErrProtocol, first.Type, first.Part, p)
	}
	if first.Chunks == 0 {
		return nil, fmt.Errorf("%w: partition %d", ErrNotServed, p)
	}
	chunks := []*transport.Envelope{first}
	for len(chunks) < first.Chunks {
		env, err := c.conn.Recv()
		if err != nil {
			return nil, err
		}
		if env.Type != transport.MsgPartition || env.Part != p {
			return nil, fmt.Errorf("%w: %v part %d interleaved in partition %d fetch", ErrProtocol, env.Type, env.Part, p)
		}
		chunks = append(chunks, env)
	}
	blob, err := transport.JoinBlobChunks(chunks)
	if err != nil {
		return nil, err
	}
	return DecodeDataset(blob)
}
