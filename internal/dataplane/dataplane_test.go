package dataplane

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

func sampleDataset(t *testing.T, n int) *ml.Dataset {
	t.Helper()
	d, err := ml.GaussianMixture(n, 4, 3, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := map[string]*ml.Dataset{
		"classification": sampleDataset(t, 17),
		"regression": {
			Features: [][]float64{{1, 2}, {3, 4}, {5, 6}},
			Labels:   []float64{0.5, -1.25, 3},
		},
		"single sample": {
			Features: [][]float64{{42}},
			Labels:   []float64{1},
			Classes:  2,
		},
	}
	for name, d := range cases {
		t.Run(name, func(t *testing.T) {
			blob, err := EncodeDataset(d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeDataset(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
			}
		})
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	d := sampleDataset(t, 9)
	blob, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	mutate := map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-5] },
		"trailing bytes": func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xFF)
		},
		"bad magic": func(b []byte) []byte {
			payload := append([]byte("XXXX\x01"), b[8+len(magic):]...)
			return checkpoint.AppendFrame(nil, payload)
		},
		"header lies about size": func([]byte) []byte {
			p := []byte(magic)
			p = append(p, 200, 1, 4, 2) // uvarints: n=328, dim=4, classes=2, no payload
			return checkpoint.AppendFrame(nil, p)
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeDataset(fn(blob)); !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestSourceCachesEncodedBlobs(t *testing.T) {
	d := sampleDataset(t, 12)
	parts, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	src := NewSource(func(p int) (*ml.Dataset, error) {
		calls++
		return parts[p], nil
	}, 3)
	for i := 0; i < 4; i++ {
		b, err := src.Blob(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDataset(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, parts[1]) {
			t.Fatal("cached blob decodes to wrong partition")
		}
	}
	if calls != 1 {
		t.Fatalf("underlying source called %d times, want 1", calls)
	}
	if _, err := src.Blob(3); !errors.Is(err, ErrNotServed) {
		t.Fatalf("out-of-range blob err = %v, want ErrNotServed", err)
	}
	if _, err := src.Blob(-1); !errors.Is(err, ErrNotServed) {
		t.Fatalf("negative blob err = %v, want ErrNotServed", err)
	}
}

// serveLoop accepts one connection and serves src on it with a tiny chunk
// length, forcing multi-chunk transfers.
func serveLoop(t *testing.T, src *Source) string {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go Serve(conn, src.Blob, 64)
		}
	}()
	return l.Addr()
}

func TestClientFetchOverLoopback(t *testing.T) {
	d := sampleDataset(t, 20)
	parts, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(func(p int) (*ml.Dataset, error) { return parts[p], nil }, 4)
	addr := serveLoop(t, src)

	c := NewClient(addr, 2*time.Second)
	defer c.Close()
	// Fetch every partition, out of order, some twice (migration re-fetch).
	for _, p := range []int{2, 0, 3, 1, 2} {
		got, err := c.Fetch(p)
		if err != nil {
			t.Fatalf("fetch %d: %v", p, err)
		}
		if !reflect.DeepEqual(got, parts[p]) {
			t.Fatalf("partition %d round trip mismatch", p)
		}
	}
	if _, err := c.Fetch(9); !errors.Is(err, ErrNotServed) {
		t.Fatalf("fetch 9 err = %v, want ErrNotServed", err)
	}
	// The not-served refusal must not wedge the session.
	if _, err := c.Fetch(0); err != nil {
		t.Fatalf("fetch after refusal: %v", err)
	}
}

func TestClientRetriesOnFreshConnection(t *testing.T) {
	d := sampleDataset(t, 8)
	parts, err := d.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(func(p int) (*ml.Dataset, error) { return parts[p], nil }, 2)
	addr := serveLoop(t, src)

	c := NewClient(addr, 2*time.Second)
	defer c.Close()
	if _, err := c.Fetch(0); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection behind its back; the next fetch must
	// transparently redial.
	c.conn.Close()
	if _, err := c.Fetch(1); err != nil {
		t.Fatalf("fetch after dropped conn: %v", err)
	}
}

func TestSourceK(t *testing.T) {
	src := NewSource(func(int) (*ml.Dataset, error) { return nil, nil }, 7)
	if src.K() != 7 {
		t.Fatalf("K = %d, want 7", src.K())
	}
}
