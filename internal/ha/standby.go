package ha

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/clustercfg"
)

// StandbyConfig parameterises a warm standby.
type StandbyConfig struct {
	// DurabilityConfig names the checkpoint directory (journal + snapshots +
	// lease) the standby tails — typically shared storage with the active
	// root. SnapshotEvery and Resume are ignored: the standby only reads.
	clustercfg.DurabilityConfig
	// Deprecated: set DurabilityConfig.CheckpointDir. Kept as a flat alias
	// for one release; when both are set the embedded field wins.
	Dir string
	// Poll is the tail/lease polling interval (default 50ms).
	Poll time.Duration
	// Grace is extra slack past the token's expiry before the root is
	// declared dead (absorbs clock skew between root and standby; default
	// one Poll).
	Grace time.Duration
}

// Promotion is the standby's handoff to the new root: the deposed token and
// the hot durable state as of the last tail. The standby deliberately does
// NOT write the lease itself — the promoted master's own Acquire claims
// generation Deposed.Gen+1 together with its listen address, so the token
// always points at a live, dialable root.
type Promotion struct {
	// Deposed is the expired token of the root being replaced.
	Deposed *Token
	// State is the recovered durable state (nil when the directory held no
	// decodable checkpoint yet — a takeover from scratch).
	State *checkpoint.State
	// Tails counts how many times the standby refreshed its hot copy while
	// waiting — observability for "how warm was the standby".
	Tails int
}

// Standby tails a root's checkpoint directory, maintaining a hot copy of
// the params/optimizer/controller state, and detects lease expiry. Run it in
// its own goroutine; when it returns a Promotion, construct a resumed master
// over the same directory to take over.
type Standby struct {
	cfg StandbyConfig

	mu       sync.Mutex
	state    *checkpoint.State
	tails    int
	lastIter int
}

// NewStandby builds a standby over the configured checkpoint directory
// (DurabilityConfig.CheckpointDir, or the deprecated Dir alias).
func NewStandby(cfg StandbyConfig) *Standby {
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = cfg.Dir
	}
	cfg.Dir = cfg.CheckpointDir
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Grace <= 0 {
		cfg.Grace = cfg.Poll
	}
	return &Standby{cfg: cfg, lastIter: -1}
}

// LastIter reports the highest durable iteration the standby has tailed
// (-1 before the first decodable state).
func (s *Standby) LastIter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastIter
}

// refresh re-recovers the durable state. A directory with no checkpoint yet
// is not an error — the standby simply has nothing to be warm about.
func (s *Standby) refresh() error {
	st, err := checkpoint.Recover(s.cfg.Dir)
	if err != nil {
		if errors.Is(err, checkpoint.ErrNoCheckpoint) {
			return nil
		}
		return err
	}
	s.mu.Lock()
	s.state = st
	s.tails++
	s.lastIter = st.LastIter
	s.mu.Unlock()
	return nil
}

// Run tails the directory until the active root's lease expires (promotion)
// or stop closes (returns nil, nil). While a token is missing the standby
// keeps waiting — there is no root to replace yet; while the token is live
// it keeps its hot copy fresh. Unreadable state or a corrupt lease file is
// surfaced typed rather than promoted over: taking over on garbage is how
// split brains start.
func (s *Standby) Run(stop <-chan struct{}) (*Promotion, error) {
	tick := time.NewTicker(s.cfg.Poll)
	defer tick.Stop()
	for {
		tok, err := ReadToken(s.cfg.Dir)
		switch {
		case errors.Is(err, ErrNoLease):
			// No root has ever claimed this directory (or a legacy run
			// without HA owns it): nothing to stand by for yet.
		case err != nil:
			return nil, fmt.Errorf("ha standby: %w", err)
		case tok.Expired(time.Now().Add(-s.cfg.Grace)):
			// The root missed its renewal window: refresh once more so the
			// promotion hands over the freshest durable state, then report.
			if err := s.refresh(); err != nil {
				return nil, fmt.Errorf("ha standby: final tail: %w", err)
			}
			s.mu.Lock()
			prom := &Promotion{Deposed: tok, State: s.state, Tails: s.tails}
			s.mu.Unlock()
			return prom, nil
		}
		if err := s.refresh(); err != nil {
			return nil, fmt.Errorf("ha standby: tail: %w", err)
		}
		select {
		case <-stop:
			return nil, nil
		case <-tick.C:
		}
	}
}
