package ha

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
)

func TestTokenRoundtrip(t *testing.T) {
	want := &Token{Gen: 7, Holder: "root-a", Addr: "127.0.0.1:4242", Expiry: time.Unix(0, 1_700_000_000_123_456_789)}
	got, err := DecodeToken(EncodeToken(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Gen != want.Gen || got.Holder != want.Holder || got.Addr != want.Addr || !got.Expiry.Equal(want.Expiry) {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, want)
	}
}

func TestDecodeTokenCorrupt(t *testing.T) {
	valid := EncodeToken(&Token{Gen: 3, Holder: "r", Addr: "a", Expiry: time.Now()})
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("NOTLEASE!"), valid[9:]...),
		"truncated": valid[:len(valid)-2],
		"flipped":   append(append([]byte{}, valid[:len(valid)-1]...), valid[len(valid)-1]^0xff),
		"zero gen":  EncodeToken(&Token{Gen: 0, Holder: "r", Addr: "a"}),
	}
	for name, data := range cases {
		if _, err := DecodeToken(data); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: err = %v, want wrapping checkpoint.ErrCorrupt", name, err)
		}
	}
}

func TestAcquireRenewRelease(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadToken(dir); !errors.Is(err, ErrNoLease) {
		t.Fatalf("empty dir: err = %v, want ErrNoLease", err)
	}
	a, err := Acquire(dir, "root-a", "addr-a", time.Hour)
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	if a.Gen() != 1 {
		t.Fatalf("first generation = %d, want 1", a.Gen())
	}
	if got := a.Token(); got.Gen != 1 || got.Holder != "root-a" || got.Addr != "addr-a" {
		t.Fatalf("held token = %+v", got)
	}
	if a.TTL() != time.Hour {
		t.Fatalf("ttl = %s, want 1h", a.TTL())
	}
	// A different holder cannot steal an unexpired lease.
	if _, err := Acquire(dir, "root-b", "addr-b", time.Hour); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("steal: err = %v, want ErrLeaseHeld", err)
	}
	// The same holder re-acquiring (a restart) bumps the generation.
	a2, err := Acquire(dir, "root-a", "addr-a2", time.Hour)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if a2.Gen() != 2 {
		t.Fatalf("restart generation = %d, want 2", a2.Gen())
	}
	// The superseded lease object is now fenced.
	if err := a.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("old lease Verify = %v, want ErrFenced", err)
	}
	if err := a.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("old lease Renew = %v, want ErrFenced", err)
	}
	if err := a2.Renew(); err != nil {
		t.Fatalf("live renew: %v", err)
	}
	if err := a2.Check(); err != nil {
		t.Fatalf("live check: %v", err)
	}
	// Release expires the claim in place; a new holder acquires gen+1
	// immediately.
	if err := a2.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	b, err := Acquire(dir, "root-b", "addr-b", time.Hour)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if b.Gen() != 3 {
		t.Fatalf("post-release generation = %d, want 3", b.Gen())
	}
	tok, err := ReadToken(dir)
	if err != nil || tok.Addr != "addr-b" || tok.Holder != "root-b" {
		t.Fatalf("token after takeover = %+v, %v", tok, err)
	}
}

func TestExpiredLeaseTakeoverFencesZombie(t *testing.T) {
	dir := t.TempDir()
	a, err := Acquire(dir, "root-a", "addr-a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// A never renewed: its claim lapsed, so B may take over.
	b, err := Acquire(dir, "root-b", "addr-b", time.Hour)
	if err != nil {
		t.Fatalf("takeover after expiry: %v", err)
	}
	if b.Gen() != a.Gen()+1 {
		t.Fatalf("takeover generation = %d, want %d", b.Gen(), a.Gen()+1)
	}
	// The zombie's in-memory token is expired, so Check falls through to
	// file verification and reports the fence.
	if err := a.Check(); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Check = %v, want ErrFenced", err)
	}
	// Fencing latches: Release must not clobber the new root's token.
	if err := a.Release(); err != nil {
		t.Fatalf("zombie release: %v", err)
	}
	tok, err := ReadToken(dir)
	if err != nil || tok.Gen != b.Gen() || tok.Holder != "root-b" {
		t.Fatalf("token after zombie release = %+v, %v — the zombie overwrote the live lease", tok, err)
	}
}

func TestAcquireRefusesCorruptLease(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LeaseFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Acquire(dir, "root-a", "addr", time.Hour); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("acquire over corrupt lease = %v, want wrapping checkpoint.ErrCorrupt", err)
	}
}

func TestStandbyPromotesOnExpiry(t *testing.T) {
	dir := t.TempDir()
	// Seed durable state the standby should tail.
	st, err := checkpoint.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(&checkpoint.Snapshot{Iter: 4, Epoch: 0, Step: 4, Params: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendIter(4, 0, 5); err != nil {
		t.Fatal(err)
	}
	st.Close()

	lease, err := Acquire(dir, "root-a", "addr-a", 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sb := NewStandby(StandbyConfig{Dir: dir, Poll: 5 * time.Millisecond})
	done := make(chan struct{})
	var prom *Promotion
	var promErr error
	go func() {
		defer close(done)
		prom, promErr = sb.Run(nil)
	}()
	// Keep the root alive across a few renewals, then stop renewing.
	for i := 0; i < 3; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := lease.Renew(); err != nil {
			t.Errorf("renew %d: %v", i, err)
		}
	}
	select {
	case <-done:
		t.Fatalf("standby promoted while the lease was live: %+v, %v", prom, promErr)
	default:
	}
	<-done // root stops renewing; TTL lapses; standby promotes
	if promErr != nil {
		t.Fatalf("standby: %v", promErr)
	}
	if prom == nil || prom.Deposed == nil || prom.Deposed.Gen != 1 {
		t.Fatalf("promotion = %+v, want deposed generation 1", prom)
	}
	if prom.State == nil || prom.State.LastIter != 4 || len(prom.State.Snap.Params) != 2 {
		t.Fatalf("promotion state = %+v, want hot copy at iter 4", prom.State)
	}
	if prom.Tails == 0 {
		t.Fatal("standby never refreshed its hot copy")
	}
	if sb.LastIter() != 4 {
		t.Fatalf("standby tailed up to iteration %d, want 4", sb.LastIter())
	}
	// The promoted master's own Acquire claims the next generation even
	// though the deposed token is still on disk.
	b, err := Acquire(dir, "root-b", "addr-b", time.Hour)
	if err != nil {
		t.Fatalf("promoted acquire: %v", err)
	}
	if b.Gen() != 2 {
		t.Fatalf("promoted generation = %d, want 2", b.Gen())
	}
}

func TestStandbyStops(t *testing.T) {
	dir := t.TempDir()
	if _, err := Acquire(dir, "root-a", "addr", time.Hour); err != nil {
		t.Fatal(err)
	}
	sb := NewStandby(StandbyConfig{Dir: dir, Poll: 2 * time.Millisecond})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		prom, err := sb.Run(stop)
		if prom != nil || err != nil {
			t.Errorf("stopped standby returned %+v, %v", prom, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
}
