package ha

import (
	"errors"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
)

// FuzzLease feeds arbitrary bytes to the lease-token decoder: every outcome
// must be either a valid token or an error wrapping checkpoint.ErrCorrupt —
// never a panic, never a silently wrong token. Decodable inputs must
// re-encode to a token that decodes to the same claim (the fencing token
// survives a write/read cycle bit-exactly).
func FuzzLease(f *testing.F) {
	valid := EncodeToken(&Token{Gen: 9, Holder: "root-a", Addr: "127.0.0.1:19999", Expiry: time.Unix(0, 1_699_999_999_000_000_001)})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("HGCLEASE\x01"))
	f.Add(EncodeToken(&Token{Gen: 1, Holder: "", Addr: "", Expiry: time.Unix(0, -5)}))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := DecodeToken(data)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap checkpoint.ErrCorrupt", err)
			}
			return
		}
		if tok.Gen <= 0 || len(tok.Holder) > maxStringLen || len(tok.Addr) > maxStringLen {
			t.Fatalf("decoder accepted impossible token %+v", tok)
		}
		again, err := DecodeToken(EncodeToken(tok))
		if err != nil {
			t.Fatalf("re-decode of valid token failed: %v", err)
		}
		if again.Gen != tok.Gen || again.Holder != tok.Holder || again.Addr != tok.Addr || !again.Expiry.Equal(tok.Expiry) {
			t.Fatalf("re-encode drifted: %+v vs %+v", again, tok)
		}
	})
}
