// Package ha is the high-availability control plane for the training root:
// a file-based lease with monotonic fencing generations, and a warm standby
// that tails the checkpoint directory and promotes itself when the lease
// expires.
//
// The lease lives in the same directory as the checkpoint store, in a single
// file (LeaseFile). Its token carries four facts: the root generation (the
// fencing token — strictly monotonic across every takeover), the holder's
// name, the holder's dial address (so group masters, workers and standbys
// discover the current root by reading the token), and the expiry time. A
// root renews its token well inside the TTL; a standby that observes the
// token expired acquires the next generation and takes over. Every frame the
// root sends and every journal append it makes is guarded by the generation,
// so a deposed root — one whose generation has been superseded — fails typed
// with ErrFenced instead of silently corrupting the job.
//
// The lease is advisory and assumes the checkpoint directory is a single
// coherent filesystem (the same assumption the checkpoint store makes).
// Takeover is driven by expiry, so the guarantee is: at most one root holds
// an unexpired, unsuperseded generation; a root that cannot renew before its
// TTL elapses must treat itself as deposed (Check verifies against the file
// once the TTL has passed).
package ha

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
)

// LeaseFile is the token's filename inside the checkpoint directory.
const LeaseFile = "LEASE"

const (
	// leaseMagic opens the lease file; the trailing byte is the format
	// version.
	leaseMagic = "HGCLEASE\x01"
	// maxStringLen bounds the holder and address strings on decode.
	maxStringLen = 256
	// maxGen bounds the generation counter on decode (mirrors the
	// checkpoint codec's ID cap).
	maxGen = 1 << 40
)

// Errors returned by the lease layer.
var (
	// ErrFenced marks a deposed root: its lease generation has been
	// superseded by a newer one. Nothing tagged with the old generation may
	// be applied — journal appends, snapshots and broadcasts all fail with
	// an error wrapping ErrFenced.
	ErrFenced = errors.New("ha: fenced: root lease superseded")
	// ErrLeaseHeld is returned by Acquire while another holder's token is
	// still unexpired.
	ErrLeaseHeld = errors.New("ha: lease held by a live root")
	// ErrNoLease is returned by ReadToken when no lease file exists.
	ErrNoLease = errors.New("ha: no lease")
)

// Token is the decoded lease file: who is root, at which generation, where
// to dial it, and until when the claim is live.
type Token struct {
	// Gen is the root generation — the fencing token. Strictly monotonic:
	// every acquisition (takeover or restart) bumps it.
	Gen int
	// Holder names the owning process (for logs and remediation hints).
	Holder string
	// Addr is the root's dial address; readers use the token for discovery.
	Addr string
	// Expiry is the instant the claim lapses unless renewed.
	Expiry time.Time
}

// Expired reports whether the token's claim has lapsed at time now.
func (t *Token) Expired(now time.Time) bool { return now.After(t.Expiry) }

// EncodeToken serialises a token into its full file contents: magic, CRC
// frame, payload.
func EncodeToken(t *Token) []byte {
	p := make([]byte, 0, 64)
	p = binary.AppendUvarint(p, uint64(t.Gen))
	p = binary.AppendVarint(p, t.Expiry.UnixNano())
	p = binary.AppendUvarint(p, uint64(len(t.Holder)))
	p = append(p, t.Holder...)
	p = binary.AppendUvarint(p, uint64(len(t.Addr)))
	p = append(p, t.Addr...)
	out := make([]byte, 0, len(leaseMagic)+8+len(p))
	out = append(out, leaseMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
	return append(out, p...)
}

// DecodeToken parses a lease file's contents. Corruption anywhere — bad
// magic, CRC mismatch, truncation, impossible values, trailing bytes —
// yields an error wrapping checkpoint.ErrCorrupt, never a panic.
func DecodeToken(data []byte) (*Token, error) {
	if len(data) < len(leaseMagic)+8 {
		return nil, fmt.Errorf("%w: lease file truncated (%d bytes)", checkpoint.ErrCorrupt, len(data))
	}
	if string(data[:len(leaseMagic)]) != leaseMagic {
		return nil, fmt.Errorf("%w: bad lease magic", checkpoint.ErrCorrupt)
	}
	body := data[len(leaseMagic):]
	n := int(binary.LittleEndian.Uint32(body))
	sum := binary.LittleEndian.Uint32(body[4:])
	if n < 0 || n != len(body)-8 {
		return nil, fmt.Errorf("%w: lease payload length %d with %d bytes present", checkpoint.ErrCorrupt, n, len(body)-8)
	}
	payload := body[8:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: lease CRC mismatch", checkpoint.ErrCorrupt)
	}
	r := payload
	uvar := func(what string) (uint64, error) {
		v, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint (%s)", checkpoint.ErrCorrupt, what)
		}
		r = r[n:]
		return v, nil
	}
	str := func(what string) (string, error) {
		l, err := uvar(what)
		if err != nil {
			return "", err
		}
		if l > maxStringLen {
			return "", fmt.Errorf("%w: %s length %d exceeds cap %d", checkpoint.ErrCorrupt, what, l, maxStringLen)
		}
		if uint64(len(r)) < l {
			return "", fmt.Errorf("%w: truncated %s", checkpoint.ErrCorrupt, what)
		}
		s := string(r[:l])
		r = r[l:]
		return s, nil
	}
	tok := &Token{}
	gen, err := uvar("generation")
	if err != nil {
		return nil, err
	}
	if gen == 0 || gen > maxGen {
		return nil, fmt.Errorf("%w: lease generation %d", checkpoint.ErrCorrupt, gen)
	}
	tok.Gen = int(gen)
	nanos, n2 := binary.Varint(r)
	if n2 <= 0 {
		return nil, fmt.Errorf("%w: bad varint (expiry)", checkpoint.ErrCorrupt)
	}
	r = r[n2:]
	tok.Expiry = time.Unix(0, nanos)
	if tok.Holder, err = str("holder"); err != nil {
		return nil, err
	}
	if tok.Addr, err = str("address"); err != nil {
		return nil, err
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after lease token", checkpoint.ErrCorrupt, len(r))
	}
	return tok, nil
}

// ReadToken reads and decodes the lease token in dir. A missing file maps to
// ErrNoLease; an undecodable one to an error wrapping checkpoint.ErrCorrupt.
func ReadToken(dir string) (*Token, error) {
	data, err := os.ReadFile(filepath.Join(dir, LeaseFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoLease, dir)
		}
		return nil, fmt.Errorf("ha read lease: %w", err)
	}
	return DecodeToken(data)
}

// writeToken atomically replaces the lease file: write a temp file, fsync,
// rename over the token, fsync the directory.
func writeToken(dir string, tok *Token) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ha write lease: %w", err)
	}
	path := filepath.Join(dir, LeaseFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ha write lease: %w", err)
	}
	if _, err := f.Write(EncodeToken(tok)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ha write lease: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ha sync lease: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ha close lease: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ha publish lease: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Lease is one holder's live claim on the root role. All methods are safe
// for concurrent use (a renewal goroutine typically runs beside the training
// loop's Check calls).
type Lease struct {
	dir string
	ttl time.Duration

	mu       sync.Mutex
	tok      Token
	fenced   error // non-nil once deposed; returned verbatim thereafter
	released bool
}

// Acquire claims the root lease in dir for holder at generation cur+1 (or 1
// when no token exists). It refuses with ErrLeaseHeld while a different
// holder's token is unexpired; the same holder re-acquiring (a restart)
// always succeeds and still bumps the generation, so fencing stays
// monotonic across restarts. addr is published in the token for discovery.
// A corrupt lease file is surfaced typed (wrapping checkpoint.ErrCorrupt)
// rather than silently overwritten: overwriting would forget the generation
// counter and re-open the split-brain window the lease exists to close.
func Acquire(dir, holder, addr string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("ha acquire: ttl %v must be positive", ttl)
	}
	gen := 1
	cur, err := ReadToken(dir)
	switch {
	case errors.Is(err, ErrNoLease):
	case err != nil:
		return nil, err
	default:
		if cur.Holder != holder && !cur.Expired(time.Now()) {
			return nil, fmt.Errorf("%w: generation %d held by %q (%s) until %s",
				ErrLeaseHeld, cur.Gen, cur.Holder, cur.Addr, cur.Expiry.Format(time.RFC3339Nano))
		}
		gen = cur.Gen + 1
	}
	l := &Lease{dir: dir, ttl: ttl}
	l.tok = Token{Gen: gen, Holder: holder, Addr: addr, Expiry: time.Now().Add(ttl)}
	if err := writeToken(dir, &l.tok); err != nil {
		return nil, err
	}
	return l, nil
}

// Gen returns the held generation — the fencing token every frame and
// journal append of this root carries.
func (l *Lease) Gen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tok.Gen
}

// Token returns a copy of the held token.
func (l *Lease) Token() Token {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tok
}

// TTL returns the lease's time-to-live (renewals should run well inside it).
func (l *Lease) TTL() time.Duration { return l.ttl }

// fencedErr builds (and latches) the deposition error naming the usurper.
func (l *Lease) fenceLocked(cur *Token) error {
	if l.fenced == nil {
		l.fenced = fmt.Errorf("%w: generation %d deposed by generation %d (%q at %s)",
			ErrFenced, l.tok.Gen, cur.Gen, cur.Holder, cur.Addr)
	}
	return l.fenced
}

// verifyLocked re-reads the token file and compares claims. Returns the
// latched ErrFenced once a newer generation (or a different holder at ours)
// is observed; nil while the file still carries our claim or has vanished.
func (l *Lease) verifyLocked() error {
	if l.fenced != nil {
		return l.fenced
	}
	cur, err := ReadToken(l.dir)
	switch {
	case errors.Is(err, ErrNoLease):
		return nil // cleared underneath us; next Renew rewrites it
	case err != nil:
		return err
	case cur.Gen > l.tok.Gen, cur.Gen == l.tok.Gen && cur.Holder != l.tok.Holder:
		return l.fenceLocked(cur)
	}
	return nil
}

// Verify synchronously checks the lease file for deposition. Used at
// snapshot boundaries and in failure paths, where the answer must reflect
// the file, not the in-memory cache.
func (l *Lease) Verify() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.verifyLocked()
}

// Check is the hot-path guard: free while the held token is unexpired, a
// file verification once the TTL has lapsed without a successful renewal (a
// stalled root must not trust its stale claim). Returns an error wrapping
// ErrFenced when deposed.
func (l *Lease) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fenced != nil {
		return l.fenced
	}
	if !l.released && time.Now().Before(l.tok.Expiry) {
		return nil
	}
	return l.verifyLocked()
}

// Renew extends the claim by one TTL after verifying it still stands.
// Returns an error wrapping ErrFenced if a newer generation has taken over.
func (l *Lease) Renew() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.verifyLocked(); err != nil {
		return err
	}
	if l.released {
		return fmt.Errorf("%w: lease released", ErrNoLease)
	}
	l.tok.Expiry = time.Now().Add(l.ttl)
	return writeToken(l.dir, &l.tok)
}

// Release expires the claim in place (keeping the generation in the file, so
// the counter stays monotonic) — a graceful shutdown lets a standby take
// over immediately instead of waiting out the TTL. Idempotent; a no-op once
// fenced (the file belongs to the new root).
func (l *Lease) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released || l.fenced != nil {
		return nil
	}
	l.released = true
	if err := l.verifyLocked(); err != nil {
		return nil // deposed or unreadable: the file is no longer ours to touch
	}
	l.tok.Expiry = time.Now()
	return writeToken(l.dir, &l.tok)
}
