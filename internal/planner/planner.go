// Package planner closes the loop the paper leaves to the operator:
// estimate worker throughputs by sampling (§III.C "which can be estimated by
// sampling"), detect when the running coding strategy's load allocation has
// drifted away from the workers' true speeds, and rebuild the strategy —
// adaptive re-coding between training epochs. This operationalises the
// group-based scheme's motivation (§V): instead of merely tolerating bad
// estimates, refresh them.
package planner

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/estimate"
)

// ErrBadConfig marks invalid planner configurations.
var ErrBadConfig = errors.New("planner: invalid config")

// Config parameterises a Planner.
type Config struct {
	// K is the partition count, S the straggler budget.
	K, S int
	// Scheme is the strategy family to (re)build: core.HeterAware (default)
	// or core.GroupBased.
	Scheme core.Kind
	// Alpha is the EWMA smoothing factor for throughput estimates
	// (default 0.3).
	Alpha float64
	// ReplanThreshold is the relative slowdown versus the optimal makespan
	// that triggers a rebuild (default 0.15 = replan when the predicted
	// iteration is ≥ 15% worse than (s+1)k/Σĉ).
	ReplanThreshold float64
	// MinObservations is the number of samples required per worker before
	// estimates override the initial throughputs (default 3).
	MinObservations int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Scheme == 0 {
		out.Scheme = core.HeterAware
	}
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.3
	}
	if out.ReplanThreshold <= 0 {
		out.ReplanThreshold = 0.15
	}
	if out.MinObservations <= 0 {
		out.MinObservations = 3
	}
	return out
}

// Planner tracks throughput estimates and owns the current strategy.
// Not safe for concurrent use; drive it from the master's control loop.
type Planner struct {
	cfg      Config
	initial  []float64
	ewma     []estimate.EWMA
	counts   []int
	current  *core.Strategy
	rebuilds int
}

// New builds a planner with an initial strategy from the given throughput
// guesses (uniform guesses are fine — the planner will correct them).
func New(cfg Config, initialThroughputs []float64, rng *rand.Rand) (*Planner, error) {
	c := cfg.withDefaults()
	m := len(initialThroughputs)
	if m == 0 || c.K <= 0 || c.S < 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d s=%d", ErrBadConfig, m, c.K, c.S)
	}
	if c.Scheme != core.HeterAware && c.Scheme != core.GroupBased {
		return nil, fmt.Errorf("%w: planner supports heter-aware/group-based, got %v", ErrBadConfig, c.Scheme)
	}
	p := &Planner{
		cfg:     c,
		initial: append([]float64(nil), initialThroughputs...),
		ewma:    make([]estimate.EWMA, m),
		counts:  make([]int, m),
	}
	for i := range p.ewma {
		p.ewma[i].Alpha = c.Alpha
	}
	st, err := p.build(rng)
	if err != nil {
		return nil, err
	}
	p.current = st
	return p, nil
}

// Strategy returns the current coding strategy.
func (p *Planner) Strategy() *core.Strategy { return p.current }

// Rebuilds returns how many times the plan has been rebuilt.
func (p *Planner) Rebuilds() int { return p.rebuilds }

// Observe records that a worker processed `partitions` partition gradients
// in `elapsed` seconds. Rates are stored in partitions/second and converted
// to the allocator's relative units transparently (only ratios matter).
func (p *Planner) Observe(worker, partitions int, elapsed float64) error {
	if worker < 0 || worker >= len(p.ewma) {
		return fmt.Errorf("%w: worker %d", ErrBadConfig, worker)
	}
	if err := p.ewma[worker].Observe(partitions, elapsed); err != nil {
		return err
	}
	p.counts[worker]++
	return nil
}

// Estimates returns the current throughput view: EWMA values where enough
// observations exist, the initial guesses elsewhere (rescaled to a common
// unit via the ratio of overlapping workers when possible).
func (p *Planner) Estimates() []float64 {
	out := append([]float64(nil), p.initial...)
	for i := range p.ewma {
		if p.counts[i] < p.cfg.MinObservations {
			continue
		}
		if v, err := p.ewma[i].Estimate(); err == nil {
			out[i] = v
		}
	}
	return out
}

// Imbalance predicts the current strategy's iteration time relative to the
// optimum under the latest estimates: max_i (n_i/ĉ_i) / ((s+1)k/Σĉ).
// 1.0 means the allocation is still perfectly balanced.
func (p *Planner) Imbalance() float64 {
	return PredictedImbalance(p.current, p.Estimates())
}

// PredictedImbalance predicts a strategy's iteration time relative to the
// optimal makespan under the given throughput estimates:
// max_i (n_i/ĉ_i) / ((s+1)k/Σĉ). It is the drift signal of the online
// replanning loop: 1.0 means the allocation still matches the estimates
// perfectly, 2.0 means iterations are predicted to run at half the possible
// speed. Estimates must align with the strategy's worker slots.
func PredictedImbalance(st *core.Strategy, estimates []float64) float64 {
	loads := st.Allocation().Loads
	if len(estimates) != len(loads) {
		return 1
	}
	var sum float64
	for _, c := range estimates {
		sum += c
	}
	if sum <= 0 {
		return 1
	}
	optimal := float64((st.S()+1)*st.K()) / sum
	worst := 0.0
	for i, n := range loads {
		if estimates[i] <= 0 {
			continue
		}
		if t := float64(n) / estimates[i]; t > worst {
			worst = t
		}
	}
	if optimal <= 0 {
		return 1
	}
	return worst / optimal
}

// BuildStrategy builds a fresh strategy of the given scheme from throughput
// estimates — the online (re)planning entry point used by the elastic control
// plane, where the worker count changes with cluster membership. Scheme 0
// defaults to heter-aware.
func BuildStrategy(scheme core.Kind, throughputs []float64, k, s int, rng *rand.Rand) (*core.Strategy, error) {
	switch scheme {
	case core.GroupBased:
		return core.NewGroupBased(throughputs, k, s, rng)
	case core.HeterAware, core.Kind(0):
		return core.NewHeterAware(throughputs, k, s, rng)
	default:
		return nil, fmt.Errorf("%w: online planning supports heter-aware/group-based, got %v", ErrBadConfig, scheme)
	}
}

// MaybeReplan rebuilds the strategy when the predicted imbalance exceeds
// the threshold. Returns whether a rebuild happened.
func (p *Planner) MaybeReplan(rng *rand.Rand) (bool, error) {
	if p.Imbalance() <= 1+p.cfg.ReplanThreshold {
		return false, nil
	}
	st, err := p.build(rng)
	if err != nil {
		return false, err
	}
	p.current = st
	p.rebuilds++
	return true, nil
}

// Replan unconditionally rebuilds from the current estimates.
func (p *Planner) Replan(rng *rand.Rand) error {
	st, err := p.build(rng)
	if err != nil {
		return err
	}
	p.current = st
	p.rebuilds++
	return nil
}

func (p *Planner) build(rng *rand.Rand) (*core.Strategy, error) {
	return BuildStrategy(p.cfg.Scheme, p.Estimates(), p.cfg.K, p.cfg.S, rng)
}
