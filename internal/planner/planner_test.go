package planner_test

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
	. "github.com/hetgc/hetgc/internal/planner"
	"github.com/hetgc/hetgc/internal/sim"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 7, S: 1}, nil, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{K: 0, S: 1}, []float64{1, 1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{K: 7, S: 1, Scheme: core.Cyclic}, []float64{1, 1, 1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("cyclic scheme err = %v", err)
	}
}

func TestInitialStrategyUsesGuesses(t *testing.T) {
	p, err := New(Config{K: 7, S: 1}, []float64{1, 2, 3, 4, 4}, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	loads := p.Strategy().Allocation().Loads
	want := []int{1, 2, 3, 4, 4}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	if p.Rebuilds() != 0 {
		t.Fatal("fresh planner must have zero rebuilds")
	}
}

func TestEstimatesFallBackUntilMinObservations(t *testing.T) {
	p, err := New(Config{K: 7, S: 1, MinObservations: 2}, []float64{1, 1, 1, 1, 10}, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(0, 4, 1); err != nil { // one observation: below min
		t.Fatal(err)
	}
	if est := p.Estimates(); est[0] != 1 {
		t.Fatalf("estimate should still be the guess, got %v", est[0])
	}
	if err := p.Observe(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if est := p.Estimates(); est[0] != 4 {
		t.Fatalf("estimate should be 4 partitions/s, got %v", est[0])
	}
}

func TestObserveValidation(t *testing.T) {
	p, err := New(Config{K: 7, S: 1}, []float64{1, 1, 1}, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(9, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Observe(0, 0, 1); err == nil {
		t.Fatal("zero partitions must error")
	}
}

func TestImbalanceDetectsDrift(t *testing.T) {
	// Built for uniform speeds, but worker 0 turns out 4x faster and worker
	// 4 4x slower: imbalance must rise well above 1.
	p, err := New(Config{K: 10, S: 1, MinObservations: 1}, []float64{1, 1, 1, 1, 1}, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	if im := p.Imbalance(); im > 1.05 {
		t.Fatalf("fresh plan should be balanced, imbalance = %v", im)
	}
	truth := []float64{4, 1, 1, 1, 0.25}
	loads := p.Strategy().Allocation().Loads
	for w, c := range truth {
		if loads[w] == 0 {
			continue
		}
		if err := p.Observe(w, loads[w], float64(loads[w])/c); err != nil {
			t.Fatal(err)
		}
	}
	if im := p.Imbalance(); im < 1.5 {
		t.Fatalf("drifted plan should be imbalanced, got %v", im)
	}
}

func TestMaybeReplanRebalances(t *testing.T) {
	// Wrong initial guesses on a strongly heterogeneous truth.
	truth := []float64{0.5, 1, 2, 4, 4.5}
	p, err := New(Config{K: 12, S: 1, MinObservations: 1}, []float64{1, 1, 1, 1, 1}, rng(6))
	if err != nil {
		t.Fatal(err)
	}

	simulate := func() float64 {
		res, err := sim.Run(sim.Config{
			Strategy:    p.Strategy(),
			Throughputs: scaleToDatasetRate(truth, p.Strategy().K()),
			Iterations:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgIterTime()
	}
	before := simulate()

	// Feed one epoch of observations at the true speeds.
	loads := p.Strategy().Allocation().Loads
	for w, c := range truth {
		if loads[w] == 0 {
			continue
		}
		if err := p.Observe(w, loads[w], float64(loads[w])/c); err != nil {
			t.Fatal(err)
		}
	}
	replanned, err := p.MaybeReplan(rng(7))
	if err != nil {
		t.Fatal(err)
	}
	if !replanned {
		t.Fatalf("expected replan (imbalance %v)", p.Imbalance())
	}
	after := simulate()
	if after >= before {
		t.Fatalf("replanning should speed iterations up: %v -> %v", before, after)
	}
	if p.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", p.Rebuilds())
	}
	// A second call without new drift must be a no-op.
	replanned, err = p.MaybeReplan(rng(8))
	if err != nil {
		t.Fatal(err)
	}
	if replanned {
		t.Fatal("no drift, no replan")
	}
}

func TestReplanGroupBased(t *testing.T) {
	p, err := New(Config{K: 7, S: 1, Scheme: core.GroupBased, MinObservations: 1},
		[]float64{1, 2, 3, 4, 4}, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy().Kind() != core.GroupBased {
		t.Fatalf("kind = %v", p.Strategy().Kind())
	}
	if err := p.Replan(rng(10)); err != nil {
		t.Fatal(err)
	}
	if p.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", p.Rebuilds())
	}
}

// scaleToDatasetRate converts partitions/second estimates into the
// simulator's datasets/second unit for a given k.
func scaleToDatasetRate(partitionRates []float64, k int) []float64 {
	out := make([]float64, len(partitionRates))
	for i, v := range partitionRates {
		out[i] = v / float64(k)
	}
	return out
}

func TestPredictedImbalance(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 4}
	st, err := core.NewHeterAware(truth, 7, 1, rng(21))
	if err != nil {
		t.Fatal(err)
	}
	// Estimates matching the build throughputs: near-balanced (rounding of
	// the proportional loads leaves a small residual imbalance).
	if im := PredictedImbalance(st, truth); im < 1-1e-9 || im > 1.6 {
		t.Fatalf("matched estimates imbalance = %v", im)
	}
	// Worker 4 collapses to 1/8th speed: the predicted imbalance must blow up.
	drifted := append([]float64(nil), truth...)
	drifted[4] = 0.5
	if im := PredictedImbalance(st, drifted); im < 2 {
		t.Fatalf("drifted imbalance = %v, want >= 2", im)
	}
	// Mismatched estimate length degrades to neutral.
	if im := PredictedImbalance(st, []float64{1, 2}); im != 1 {
		t.Fatalf("mismatched length imbalance = %v, want 1", im)
	}
}

func TestBuildStrategyOnline(t *testing.T) {
	st, err := BuildStrategy(core.HeterAware, []float64{1, 2, 3}, 6, 1, rng(22))
	if err != nil || st.Kind() != core.HeterAware || st.M() != 3 {
		t.Fatalf("st = %+v err = %v", st, err)
	}
	st, err = BuildStrategy(0, []float64{1, 2, 3}, 6, 1, rng(23))
	if err != nil || st.Kind() != core.HeterAware {
		t.Fatalf("default scheme: %v err %v", st.Kind(), err)
	}
	st, err = BuildStrategy(core.GroupBased, []float64{1, 2, 3, 4}, 6, 1, rng(24))
	if err != nil || st.Kind() != core.GroupBased {
		t.Fatalf("group-based: err %v", err)
	}
	if _, err := BuildStrategy(core.Naive, []float64{1, 1}, 2, 0, rng(25)); err == nil {
		t.Fatal("naive must be rejected for online planning")
	}
}
