package planner

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/sim"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 7, S: 1}, nil, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{K: 0, S: 1}, []float64{1, 1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{K: 7, S: 1, Scheme: core.Cyclic}, []float64{1, 1, 1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("cyclic scheme err = %v", err)
	}
}

func TestInitialStrategyUsesGuesses(t *testing.T) {
	p, err := New(Config{K: 7, S: 1}, []float64{1, 2, 3, 4, 4}, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	loads := p.Strategy().Allocation().Loads
	want := []int{1, 2, 3, 4, 4}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	if p.Rebuilds() != 0 {
		t.Fatal("fresh planner must have zero rebuilds")
	}
}

func TestEstimatesFallBackUntilMinObservations(t *testing.T) {
	p, err := New(Config{K: 7, S: 1, MinObservations: 2}, []float64{1, 1, 1, 1, 10}, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(0, 4, 1); err != nil { // one observation: below min
		t.Fatal(err)
	}
	if est := p.Estimates(); est[0] != 1 {
		t.Fatalf("estimate should still be the guess, got %v", est[0])
	}
	if err := p.Observe(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if est := p.Estimates(); est[0] != 4 {
		t.Fatalf("estimate should be 4 partitions/s, got %v", est[0])
	}
}

func TestObserveValidation(t *testing.T) {
	p, err := New(Config{K: 7, S: 1}, []float64{1, 1, 1}, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(9, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Observe(0, 0, 1); err == nil {
		t.Fatal("zero partitions must error")
	}
}

func TestImbalanceDetectsDrift(t *testing.T) {
	// Built for uniform speeds, but worker 0 turns out 4x faster and worker
	// 4 4x slower: imbalance must rise well above 1.
	p, err := New(Config{K: 10, S: 1, MinObservations: 1}, []float64{1, 1, 1, 1, 1}, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	if im := p.Imbalance(); im > 1.05 {
		t.Fatalf("fresh plan should be balanced, imbalance = %v", im)
	}
	truth := []float64{4, 1, 1, 1, 0.25}
	loads := p.Strategy().Allocation().Loads
	for w, c := range truth {
		if loads[w] == 0 {
			continue
		}
		if err := p.Observe(w, loads[w], float64(loads[w])/c); err != nil {
			t.Fatal(err)
		}
	}
	if im := p.Imbalance(); im < 1.5 {
		t.Fatalf("drifted plan should be imbalanced, got %v", im)
	}
}

func TestMaybeReplanRebalances(t *testing.T) {
	// Wrong initial guesses on a strongly heterogeneous truth.
	truth := []float64{0.5, 1, 2, 4, 4.5}
	p, err := New(Config{K: 12, S: 1, MinObservations: 1}, []float64{1, 1, 1, 1, 1}, rng(6))
	if err != nil {
		t.Fatal(err)
	}

	simulate := func() float64 {
		res, err := sim.Run(sim.Config{
			Strategy:    p.Strategy(),
			Throughputs: scaleToDatasetRate(truth, p.Strategy().K()),
			Iterations:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgIterTime()
	}
	before := simulate()

	// Feed one epoch of observations at the true speeds.
	loads := p.Strategy().Allocation().Loads
	for w, c := range truth {
		if loads[w] == 0 {
			continue
		}
		if err := p.Observe(w, loads[w], float64(loads[w])/c); err != nil {
			t.Fatal(err)
		}
	}
	replanned, err := p.MaybeReplan(rng(7))
	if err != nil {
		t.Fatal(err)
	}
	if !replanned {
		t.Fatalf("expected replan (imbalance %v)", p.Imbalance())
	}
	after := simulate()
	if after >= before {
		t.Fatalf("replanning should speed iterations up: %v -> %v", before, after)
	}
	if p.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", p.Rebuilds())
	}
	// A second call without new drift must be a no-op.
	replanned, err = p.MaybeReplan(rng(8))
	if err != nil {
		t.Fatal(err)
	}
	if replanned {
		t.Fatal("no drift, no replan")
	}
}

func TestReplanGroupBased(t *testing.T) {
	p, err := New(Config{K: 7, S: 1, Scheme: core.GroupBased, MinObservations: 1},
		[]float64{1, 2, 3, 4, 4}, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy().Kind() != core.GroupBased {
		t.Fatalf("kind = %v", p.Strategy().Kind())
	}
	if err := p.Replan(rng(10)); err != nil {
		t.Fatal(err)
	}
	if p.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", p.Rebuilds())
	}
}

// scaleToDatasetRate converts partitions/second estimates into the
// simulator's datasets/second unit for a given k.
func scaleToDatasetRate(partitionRates []float64, k int) []float64 {
	out := make([]float64, len(partitionRates))
	for i, v := range partitionRates {
		out[i] = v / float64(k)
	}
	return out
}
