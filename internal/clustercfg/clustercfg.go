// Package clustercfg holds the composable configuration blocks shared by
// every runtime entry point: durability (checkpoint + journal), high
// availability (lease fencing) and telemetry (the obs registry). Before this
// package the same six fields were duplicated — with slowly drifting doc
// comments — across ElasticConfig, the sharded Config, StandbyConfig and both
// simulator configs. Each run config now embeds these structs; the old flat
// fields remain as deprecated aliases for one release (see each config's
// Normalize) so existing composite literals keep compiling unchanged.
//
// The package is a leaf: it may import internal/obs and the standard library
// only, so every runtime, simulator and binary can depend on it without
// cycles.
package clustercfg

import (
	"time"

	"github.com/hetgc/hetgc/internal/obs"
)

// DurabilityConfig selects checkpointing: a CRC-framed write-ahead journal
// plus generation-rotated snapshots under CheckpointDir (see
// internal/checkpoint). The zero value disables durability.
type DurabilityConfig struct {
	// CheckpointDir enables durable training state when non-empty: the
	// journal, snapshots and the HA lease token all live in this directory.
	CheckpointDir string
	// SnapshotEvery is the snapshot cadence in iterations (default 10 when
	// checkpointing is enabled).
	SnapshotEvery int
	// Resume restores training state from CheckpointDir instead of starting
	// fresh. Requires CheckpointDir.
	Resume bool
}

// Enabled reports whether durable state is configured.
func (d DurabilityConfig) Enabled() bool { return d.CheckpointDir != "" }

// Merge fills zero-valued fields from deprecated flat aliases: each alias is
// copied only when the embedded field is unset, so a config that sets both
// keeps the embedded (new) value. Returns the merged struct.
func (d DurabilityConfig) Merge(checkpointDir string, snapshotEvery int, resume bool) DurabilityConfig {
	if d.CheckpointDir == "" {
		d.CheckpointDir = checkpointDir
	}
	if d.SnapshotEvery == 0 {
		d.SnapshotEvery = snapshotEvery
	}
	if !d.Resume {
		d.Resume = resume
	}
	return d
}

// HAConfig selects lease-fenced high availability (see internal/ha). The
// zero value disables the lease.
type HAConfig struct {
	// LeaseTTL enables the master lease when > 0: the master acquires and
	// renews a fencing token under the checkpoint directory, a warm standby
	// takes over when the token lapses. Requires a checkpoint directory.
	LeaseTTL time.Duration
	// Holder names this node in the lease token (default is runtime-specific,
	// e.g. "master" or "shard-root").
	Holder string
}

// Enabled reports whether the HA lease is configured.
func (h HAConfig) Enabled() bool { return h.LeaseTTL > 0 }

// Merge fills zero-valued fields from deprecated flat aliases (see
// DurabilityConfig.Merge).
func (h HAConfig) Merge(leaseTTL time.Duration, holder string) HAConfig {
	if h.LeaseTTL == 0 {
		h.LeaseTTL = leaseTTL
	}
	if h.Holder == "" {
		h.Holder = holder
	}
	return h
}

// WireConfig selects the gradient wire codec a master prefers when workers
// dial in (see internal/grad). Codecs are negotiated per connection: a worker
// that does not advertise the preferred codec keeps uploading raw float64, so
// mixed-version clusters interoperate. The zero value keeps raw uploads
// everywhere.
type WireConfig struct {
	// Codec names the preferred gradient compression codec: "raw" (or empty),
	// "fp16", "int8", "topk" or "delta". Parsed by grad.ParseCodec at the
	// runtime layer; an unknown name is a config error there.
	Codec string
}

// Enabled reports whether a non-raw codec preference is configured.
func (w WireConfig) Enabled() bool { return w.Codec != "" && w.Codec != "raw" }

// Merge fills the codec from a deprecated flat alias (see
// DurabilityConfig.Merge).
func (w WireConfig) Merge(codec string) WireConfig {
	if w.Codec == "" {
		w.Codec = codec
	}
	return w
}

// TelemetryConfig plugs a live metrics registry into a runtime (see
// internal/obs). The zero value disables telemetry.
type TelemetryConfig struct {
	// Obs receives roster, controller, checkpoint, HA and wire metrics plus
	// control-plane events when non-nil.
	Obs *obs.Metrics
}

// Enabled reports whether telemetry is configured.
func (t TelemetryConfig) Enabled() bool { return t.Obs != nil }

// Merge fills the registry from a deprecated flat alias (see
// DurabilityConfig.Merge).
func (t TelemetryConfig) Merge(o *obs.Metrics) TelemetryConfig {
	if t.Obs == nil {
		t.Obs = o
	}
	return t
}
