package cluster

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTable2ClusterSizes(t *testing.T) {
	cases := []struct {
		c    *Cluster
		want int
	}{
		{ClusterA(), 8},
		{ClusterB(), 16},
		{ClusterC(), 32},
		{ClusterD(), 58},
	}
	for _, tc := range cases {
		if tc.c.M() != tc.want {
			t.Fatalf("%s has %d workers, want %d", tc.c.Name, tc.c.M(), tc.want)
		}
		if err := tc.c.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.c.Name, err)
		}
	}
}

func TestClusterAComposition(t *testing.T) {
	counts := map[int]int{}
	for _, w := range ClusterA().Workers {
		counts[w.VCPUs]++
	}
	want := map[int]int{2: 2, 4: 2, 8: 3, 12: 1}
	for size, n := range want {
		if counts[size] != n {
			t.Fatalf("Cluster-A has %d machines of %d vCPUs, want %d", counts[size], size, n)
		}
	}
}

func TestThroughputProportionalToVCPUs(t *testing.T) {
	c := ClusterA()
	ths := c.Throughputs()
	for i, w := range c.Workers {
		if ths[i] != float64(w.VCPUs)*defaultBase {
			t.Fatalf("throughput[%d] = %v", i, ths[i])
		}
	}
	var sum float64
	for _, v := range ths {
		sum += v
	}
	if c.TotalThroughput() != sum {
		t.Fatal("TotalThroughput mismatch")
	}
}

func TestFromHistogramErrors(t *testing.T) {
	if _, err := FromHistogram("x", map[int]int{4: 1}, 0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FromHistogram("x", map[int]int{0: 1}, 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FromHistogram("x", nil, 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty cluster err = %v", err)
	}
}

func TestFromHistogramDeterministicOrder(t *testing.T) {
	a, err := FromHistogram("x", map[int]int{8: 1, 2: 1, 4: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8}
	for i, w := range a.Workers {
		if w.VCPUs != want[i] {
			t.Fatalf("order = %v", a.Workers)
		}
	}
}

func TestHomogeneous(t *testing.T) {
	c, err := Homogeneous("h", 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 5 {
		t.Fatalf("m = %d", c.M())
	}
	for _, w := range c.Workers {
		if w.VCPUs != 8 {
			t.Fatalf("vcpus = %d", w.VCPUs)
		}
	}
}

func TestNoisyThroughputsBounds(t *testing.T) {
	c := ClusterB()
	rng := rand.New(rand.NewSource(1))
	noisy := c.NoisyThroughputs(0.3, rng)
	exact := c.Throughputs()
	for i := range noisy {
		lo, hi := exact[i]*0.7, exact[i]*1.3
		if noisy[i] < lo-1e-9 || noisy[i] > hi+1e-9 {
			t.Fatalf("noisy[%d] = %v outside [%v,%v]", i, noisy[i], lo, hi)
		}
	}
	// eps=0 or nil rng: exact copy.
	same := c.NoisyThroughputs(0, rng)
	for i := range same {
		if same[i] != exact[i] {
			t.Fatal("eps=0 must be exact")
		}
	}
}

func TestValidateCatchesBadWorker(t *testing.T) {
	c := &Cluster{Name: "bad", Workers: []Worker{{VCPUs: 0, BaseThroughput: 1}}}
	if err := c.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
}
