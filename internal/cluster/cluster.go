// Package cluster models the heterogeneous worker fleets of the paper's
// evaluation (§VI, Table II). A cluster is a list of worker specs; each
// worker's gradient throughput c_i (partitions per second) is proportional
// to its vCPU count, matching the paper's observation that per-iteration
// compute time scales with the number of samples assigned.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrBadSpec is returned for invalid cluster definitions.
var ErrBadSpec = errors.New("cluster: invalid spec")

// Worker describes one machine.
type Worker struct {
	// VCPUs is the virtual CPU count (QingCloud instance size in the paper).
	VCPUs int
	// BaseThroughput is the gradient-computation rate of a 1-vCPU machine,
	// expressed as full-dataset fractions per second (the unit used by the
	// simulator); the worker's throughput is VCPUs·BaseThroughput.
	BaseThroughput float64
}

// Throughput returns the worker's processing rate in datasets/second.
func (w Worker) Throughput() float64 { return float64(w.VCPUs) * w.BaseThroughput }

// Cluster is an ordered worker fleet.
type Cluster struct {
	Name    string
	Workers []Worker
}

// M returns the number of workers.
func (c *Cluster) M() int { return len(c.Workers) }

// Throughputs returns the per-worker throughput vector c_i.
func (c *Cluster) Throughputs() []float64 {
	out := make([]float64, len(c.Workers))
	for i, w := range c.Workers {
		out[i] = w.Throughput()
	}
	return out
}

// TotalThroughput returns Σ c_i.
func (c *Cluster) TotalThroughput() float64 {
	var sum float64
	for _, w := range c.Workers {
		sum += w.Throughput()
	}
	return sum
}

// Validate checks that the cluster is non-empty with positive throughputs.
func (c *Cluster) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("%w: empty cluster %q", ErrBadSpec, c.Name)
	}
	for i, w := range c.Workers {
		if w.VCPUs <= 0 || w.BaseThroughput <= 0 {
			return fmt.Errorf("%w: worker %d has vcpus=%d base=%v", ErrBadSpec, i, w.VCPUs, w.BaseThroughput)
		}
	}
	return nil
}

// NoisyThroughputs returns the throughput vector perturbed multiplicatively
// by Uniform(1−eps, 1+eps) noise — the imperfect estimation setting that
// motivates the group-based scheme (§V).
func (c *Cluster) NoisyThroughputs(eps float64, rng *rand.Rand) []float64 {
	out := c.Throughputs()
	if eps <= 0 || rng == nil {
		return out
	}
	for i := range out {
		factor := 1 + eps*(2*rng.Float64()-1)
		if factor < 0.05 {
			factor = 0.05
		}
		out[i] *= factor
	}
	return out
}

// FromHistogram builds a cluster from a map of vCPU size → machine count,
// emitting workers in ascending vCPU order for determinism.
func FromHistogram(name string, counts map[int]int, baseThroughput float64) (*Cluster, error) {
	if baseThroughput <= 0 {
		return nil, fmt.Errorf("%w: base throughput %v", ErrBadSpec, baseThroughput)
	}
	sizes := make([]int, 0, len(counts))
	for size := range counts {
		sizes = append(sizes, size)
	}
	// Insertion sort: tiny slices.
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	c := &Cluster{Name: name}
	for _, size := range sizes {
		n := counts[size]
		if n < 0 || size <= 0 {
			return nil, fmt.Errorf("%w: %d machines of %d vCPUs", ErrBadSpec, n, size)
		}
		for i := 0; i < n; i++ {
			c.Workers = append(c.Workers, Worker{VCPUs: size, BaseThroughput: baseThroughput})
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// defaultBase is the per-vCPU rate used by the Table II clusters: 0.01
// datasets/second per vCPU gives per-iteration times of a few seconds,
// matching the DNN-training iteration durations the paper cites.
const defaultBase = 0.01

// Table II of the paper: machines per vCPU class for the four evaluation
// clusters.
func table2(name string, c2, c4, c8, c12, c16 int) *Cluster {
	counts := map[int]int{}
	if c2 > 0 {
		counts[2] = c2
	}
	if c4 > 0 {
		counts[4] = c4
	}
	if c8 > 0 {
		counts[8] = c8
	}
	if c12 > 0 {
		counts[12] = c12
	}
	if c16 > 0 {
		counts[16] = c16
	}
	cl, err := FromHistogram(name, counts, defaultBase)
	if err != nil {
		// Static tables: a failure here is a programming error.
		panic(fmt.Sprintf("cluster: bad Table II spec %s: %v", name, err))
	}
	return cl
}

// ClusterA returns Table II Cluster-A: 8 workers (2×2, 2×4, 3×8, 1×12 vCPUs).
func ClusterA() *Cluster { return table2("Cluster-A", 2, 2, 3, 1, 0) }

// ClusterB returns Table II Cluster-B: 16 workers (2×2, 4×4, 8×8, 2×16).
func ClusterB() *Cluster { return table2("Cluster-B", 2, 4, 8, 0, 2) }

// ClusterC returns Table II Cluster-C: 32 workers (1×2, 4×4, 10×8, 12×12, 5×16).
func ClusterC() *Cluster { return table2("Cluster-C", 1, 4, 10, 12, 5) }

// ClusterD returns Table II Cluster-D: 58 workers (4×4, 20×8, 18×12, 16×16).
func ClusterD() *Cluster { return table2("Cluster-D", 0, 4, 20, 18, 16) }

// Homogeneous returns a uniform cluster of m workers with the given vCPUs.
func Homogeneous(name string, m, vcpus int) (*Cluster, error) {
	return FromHistogram(name, map[int]int{vcpus: m}, defaultBase)
}
