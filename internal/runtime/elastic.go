// Elastic master: the live counterpart of the internal/elastic control
// plane. Unlike Master — which freezes one strategy and treats every worker
// failure as permanent — the ElasticMaster accepts workers for the whole
// training run, ingests their per-iteration telemetry, and when the
// controller detects drift or churn it migrates the cluster to a fresh
// strategy with an epoch-versioned atomic handover: MsgReassign carries
// (epoch, assignment), parameter broadcasts are tagged with the epoch, and
// gradient uploads from any older epoch are rejected before they can reach
// decode.
//
// All membership machinery — the accept loop, the join/rejoin handshake,
// connection-generation fencing, the migration broadcast and the
// epoch-fenced collect — lives in internal/roster and is shared with the
// sharded runtime's per-group masters; this file only keeps the policy:
// the BSP loop, retry budgets and result bookkeeping.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/dataplane"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// ErrMigrationFailed is returned when a forced replan (after worker deaths
// made the current epoch undecodable) cannot produce a viable strategy. It
// is the roster engine's sentinel, shared with the sharded runtime.
var ErrMigrationFailed = roster.ErrMigrationFailed

// ElasticConfig configures an elastic training master.
type ElasticConfig struct {
	// K is the data-partition count, S the straggler budget; both are fixed
	// across migrations (partition indices are global and stable).
	K, S int
	// Scheme is the strategy family to plan: core.HeterAware (default) or
	// core.GroupBased.
	Scheme core.Kind
	// Model, Optimizer, InitialParams, Iterations, SampleCount, IterTimeout,
	// LossEvery and LossFn mirror MasterConfig.
	Model         ml.Model
	Optimizer     ml.Optimizer
	InitialParams []float64
	Iterations    int
	SampleCount   int
	IterTimeout   time.Duration
	LossEvery     int
	LossFn        func(params []float64) (float64, error)
	// MinWorkers is the membership required before training starts
	// (default s+1, the planning quorum).
	MinWorkers int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// MaxRetries bounds forced replan+retry attempts for a single iteration
	// after timeouts or mid-iteration deaths (default 2).
	MaxRetries int
	// Seed drives strategy construction — fixed seed, reproducible plans.
	Seed int64
	// PartitionSource, when non-nil, turns the master into the data plane:
	// workers that dial with no local PartitionData fetch their shards over
	// the wire (MsgPartitionReq/MsgPartition, CRC-framed), and the master
	// answers partition p with PartitionSource(p). Nil keeps the in-process
	// behavior where every worker must carry its own PartitionData.
	PartitionSource func(p int) (*ml.Dataset, error)

	// The composable cluster blocks (see internal/clustercfg). Durability:
	// a non-empty CheckpointDir makes training state durable — every
	// migration, iteration and membership event is journaled there, the model
	// is snapshotted every SnapshotEvery iterations (default 10), a fresh run
	// refuses a directory that already holds state (checkpoint.ErrExists),
	// and Resume instead constructs the master from the recovered state:
	// parameters, optimizer state and iteration counter from the newest
	// decodable snapshot; member IDs reserved so workers rejoin their old
	// identities via ResumeID; and the plan epoch base raised above every
	// epoch the journal ever recorded, so gradient uploads encoded before the
	// crash are fenced before decode. HA: a positive LeaseTTL puts the master
	// under the root lease in CheckpointDir — construction acquires the next
	// lease generation (publishing the master's address in the token for
	// discovery), a background loop renews it, every broadcast and upload
	// carries the generation, and journal writes are refused once the lease
	// is lost: a deposed master fails typed with ha.ErrFenced while the new
	// holder trains on (Holder defaults to "elastic-root"). Telemetry: a
	// non-nil Obs attaches the live telemetry plane — per-iteration phase
	// traces, roster/controller/checkpoint/lease metrics and the structured
	// event journal (serve it with obs.Metrics.Serve).
	clustercfg.DurabilityConfig
	clustercfg.HAConfig
	clustercfg.TelemetryConfig
	// Wire selects the gradient codec the master offers each worker at its
	// hello: workers that advertise it upload quantized payloads, everyone
	// else stays on raw float64 (mixed-version interop). Not embedded — its
	// Codec field would be shadow-prone next to the deprecated aliases below.
	Wire clustercfg.WireConfig

	// Deprecated: flat aliases for the embedded cluster blocks above, kept
	// for one release so existing composite literals compile unchanged. Set
	// DurabilityConfig.CheckpointDir (etc.) instead; when both views are set
	// the embedded field wins. normalize merges and mirrors them, so reads
	// through either view agree everywhere past the constructor.
	CheckpointDir string
	// Deprecated: set DurabilityConfig.SnapshotEvery.
	SnapshotEvery int
	// Deprecated: set DurabilityConfig.Resume.
	Resume bool
	// Deprecated: set HAConfig.LeaseTTL.
	LeaseTTL time.Duration
	// Deprecated: set HAConfig.Holder.
	Holder string
	// Deprecated: set TelemetryConfig.Obs.
	Obs *obs.Metrics
}

// normalize merges the deprecated flat aliases into the embedded cluster
// blocks (the embedded field wins when both are set) and mirrors the merged
// values back onto the aliases, so internal reads through either view agree.
func (c *ElasticConfig) normalize() {
	c.DurabilityConfig = c.DurabilityConfig.Merge(c.CheckpointDir, c.SnapshotEvery, c.Resume)
	c.HAConfig = c.HAConfig.Merge(c.LeaseTTL, c.Holder)
	c.TelemetryConfig = c.TelemetryConfig.Merge(c.Obs)
	c.CheckpointDir = c.DurabilityConfig.CheckpointDir
	c.SnapshotEvery = c.DurabilityConfig.SnapshotEvery
	c.Resume = c.DurabilityConfig.Resume
	c.LeaseTTL = c.HAConfig.LeaseTTL
	c.Holder = c.HAConfig.Holder
	c.Obs = c.TelemetryConfig.Obs
}

func (c *ElasticConfig) validate() error {
	if c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.MinWorkers < 0 || (c.MinWorkers > 0 && c.MinWorkers < c.S+1) {
		return fmt.Errorf("%w: min workers %d below planning quorum s+1=%d", ErrBadConfig, c.MinWorkers, c.S+1)
	}
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("%w: resume requires a checkpoint directory", ErrBadConfig)
	}
	if c.LeaseTTL > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("%w: lease requires a checkpoint directory", ErrBadConfig)
	}
	if _, err := c.wireCodec(); err != nil {
		return err
	}
	return nil
}

// wireCodec parses the configured codec preference (empty means raw).
func (c *ElasticConfig) wireCodec() (grad.Codec, error) {
	if c.Wire.Codec == "" {
		return grad.CodecRaw, nil
	}
	codec, err := grad.ParseCodec(c.Wire.Codec)
	if err != nil {
		return grad.CodecRaw, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return codec, nil
}

// ElasticResult summarises an elastic training run.
type ElasticResult struct {
	// Params are the final parameters.
	Params []float64
	// StartIter is the first iteration this run executed (non-zero when the
	// master was resumed from a checkpoint; IterTimes and Epochs cover
	// iterations StartIter..).
	StartIter int
	// IterTimes are per-iteration wall times in seconds.
	IterTimes []float64
	// Epochs records the plan epoch each iteration was decoded under.
	Epochs []int
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// Replans is the migration history (initial plan included).
	Replans []elastic.ReplanEvent
	// StaleEpochRejected counts gradient uploads rejected because they were
	// encoded under a superseded plan epoch — fenced before decode.
	StaleEpochRejected int
	// StragglersSkipped counts current-epoch uploads that arrived after
	// their iteration had already decoded.
	StragglersSkipped int
	// MalformedSkipped counts uploads rejected before decode (wrong length,
	// NaN/Inf, transport validation failures).
	MalformedSkipped int
	// StaleConnRejected counts frames rejected because they arrived from a
	// superseded connection generation (the member rejoined while they were
	// in flight).
	StaleConnRejected int
	// TelemetrySamples counts telemetry reports ingested by the controller.
	TelemetrySamples int
	// Joins and Deaths count membership events observed during the run.
	Joins, Deaths int
	// RootGen is the lease generation this master held (0 without a lease).
	RootGen int
	// FencedUploads counts gradient uploads rejected by the root-generation
	// fence — frames encoded under a deposed root's broadcast.
	FencedUploads int
}

// ElasticMaster drives elastic BSP training over TCP workers that may join,
// die and rejoin mid-run. Membership and fencing are delegated to a
// roster.Engine; this type owns the training policy.
type ElasticMaster struct {
	cfg ElasticConfig
	eng *roster.Engine

	// Durable-state wiring (nil/zero without CheckpointDir).
	store     *checkpoint.Store
	params    []float64 // starting parameters (recovered on resume)
	startIter int
	step      int
	clock     float64
	// fence is the highest plan epoch the recovered journal had seen (-1 on
	// a fresh run). Snapshots must never record a group epoch below it: the
	// resume anchor is written before any new plan exists, and losing the
	// fence there would let a second crash resume with colliding epochs.
	fence int
	// lease is the HA root lease (nil without LeaseTTL). renewSuspended is
	// the fault-injection hook: once set, the renewal loop stops extending
	// the lease, the TTL lapses, and a standby may take over — this master
	// becomes the zombie whose writes get fenced.
	lease          *ha.Lease
	renewSuspended atomic.Bool
	// stopRenew stops the renewal loop (idempotent; no-op without a lease).
	// Renewal starts in the constructor so the lease survives however long
	// worker admission takes before Run.
	stopRenew func()
}

// NewElasticMaster validates the config, prepares the control plane and
// starts accepting workers on addr (use "127.0.0.1:0" for tests). Workers
// may connect at any time between NewElasticMaster and the end of Run.
//
// With CheckpointDir set, the master writes through a checkpoint.Store;
// with Resume additionally set, it is constructed from the recovered state
// instead of the configured initial state (see ElasticConfig.Resume).
// Recovery failures are typed: checkpoint.ErrNoCheckpoint when the
// directory holds no state, checkpoint.ErrCorrupt when no snapshot decodes.
func NewElasticMaster(cfg ElasticConfig, addr string) (*ElasticMaster, error) {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10
		cfg.DurabilityConfig.SnapshotEvery = 10
	}
	ctrl, err := elastic.NewController(elastic.Config{
		K: cfg.K, S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	ma := &ElasticMaster{cfg: cfg, params: append([]float64(nil), cfg.InitialParams...), fence: -1, stopRenew: func() {}}
	var recovered []int
	if cfg.CheckpointDir != "" && cfg.Resume {
		state, err := checkpoint.Recover(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		if recovered, err = ma.restoreFrom(state, ctrl); err != nil {
			return nil, err
		}
	}
	// The listener comes first: the lease token publishes the dial address,
	// so a standby that promotes discovers the live root from the token.
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseTTL > 0 {
		holder := cfg.Holder
		if holder == "" {
			holder = "elastic-root"
		}
		ma.lease, err = ha.Acquire(cfg.CheckpointDir, holder, l.Addr(), cfg.LeaseTTL)
		if err != nil {
			_ = l.Close()
			return nil, err
		}
		cfg.Obs.OnLease(uint64(ma.lease.Gen()))
		// Renewal starts now, not in Run: worker admission between the two
		// can outlast a short TTL, and the lease must not lapse then.
		ch := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go ma.renewLoop(ch, &wg)
		var once sync.Once
		ma.stopRenew = func() { once.Do(func() { close(ch); wg.Wait() }) }
	}
	if cfg.CheckpointDir != "" {
		if cfg.Resume {
			ma.store, err = checkpoint.Reopen(cfg.CheckpointDir)
		} else {
			ma.store, err = checkpoint.Create(cfg.CheckpointDir)
		}
		if err != nil {
			ma.stopRenew()
			_ = l.Close()
			return nil, err
		}
		ma.store.SetMetrics(cfg.Obs)
		if ma.lease != nil {
			// Every journal append and snapshot re-checks the lease: the
			// moment a newer generation holds it, this master's writes are
			// refused — a deposed root can never extend state the new
			// holder already owns.
			ma.store.SetGuard(ma.lease.Check)
		}
		if cfg.Resume {
			// Anchor a fresh generation with the resumed state before any
			// journal append: crash-during-resume re-recovers this exact
			// state, and the old (possibly torn) journal is never extended.
			if err := ma.store.WriteSnapshot(ma.snapshot(ctrl.State(), ma.startIter, -1, ma.clock, ma.params)); err != nil {
				ma.stopRenew()
				_ = l.Close()
				ma.closeStore()
				return nil, err
			}
		}
	}
	var rec roster.Recorder
	if ma.store != nil {
		rec = ma.store.GroupRecorder(0)
	}
	cfg.Obs.BindWire(transport.Wire)
	cfg.Obs.BindWireCodecs(grad.CodecNames(), transport.WireCodec)
	codec, _ := cfg.wireCodec() // validated above
	rcfg := roster.Config{
		Controller:   ctrl,
		WriteTimeout: cfg.IterTimeout,
		K:            cfg.K,
		S:            cfg.S,
		Recovered:    recovered,
		Recorder:     rec,
		Obs:          cfg.Obs,
		Codec:        byte(codec),
	}
	if ma.lease != nil {
		rcfg.RootGen = ma.lease.Gen()
	}
	if cfg.PartitionSource != nil {
		// The master doubles as the data plane: remote workers fetch their
		// shards from the same address they dial for the control plane
		// (first-frame routing in the roster engine keeps the two apart).
		rcfg.PartitionBlob = dataplane.NewSource(cfg.PartitionSource, cfg.K).Blob
	}
	eng, err := roster.New(rcfg, l)
	if err != nil {
		ma.stopRenew()
		_ = l.Close()
		ma.closeStore()
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	ma.eng = eng
	return ma, nil
}

// restoreFrom rebuilds the master's starting state from a recovered
// checkpoint: parameters, optimizer state, iteration counter, the reserved
// member IDs, and the epoch fence.
func (ma *ElasticMaster) restoreFrom(state *checkpoint.State, ctrl *elastic.Controller) ([]int, error) {
	recovered := append([]int(nil), state.GroupMembers[0]...)
	// Membership restores in snapshot order (join order) with warm meters;
	// journal-only joiners follow with cold priors. Everyone starts dead:
	// their connections died with the crashed master, and rejoining via
	// ResumeID revives them.
	var ctrlState elastic.ControllerState
	seen := make(map[int]bool)
	if state.Snap != nil && state.Snap.Ctrl != nil {
		for _, ms := range state.Snap.Ctrl.Members {
			ms.Alive = false
			ctrlState.Members = append(ctrlState.Members, ms)
			seen[ms.ID] = true
		}
		ctrlState.Events = state.Snap.Ctrl.Events
	}
	for _, id := range recovered {
		if !seen[id] {
			ctrlState.Members = append(ctrlState.Members, elastic.MemberState{ID: id})
		}
	}
	sort.Ints(recovered)
	ctrlState.LastReplan = -1
	if err := ctrl.Restore(&ctrlState); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	ma.fence = state.MaxEpoch()
	ctrl.SetEpochBase(ma.fence + 1)
	ts, err := state.RestoreTraining(ma.cfg.Model.Dim(), ma.cfg.Optimizer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if ts.Params != nil {
		ma.params = ts.Params
	}
	ma.startIter, ma.step, ma.clock = ts.Iter, ts.Step, ts.Clock
	return recovered, nil
}

// snapshot assembles the durable state at an iteration boundary: nextIter
// is the first iteration NOT folded into params, epoch the current plan
// epoch (-1 before any plan, e.g. the resume anchor).
func (ma *ElasticMaster) snapshot(ctrlState *elastic.ControllerState, nextIter, epoch int, clock float64, params []float64) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Iter:   nextIter,
		Epoch:  epoch,
		Step:   ma.step,
		Clock:  clock,
		Params: append([]float64(nil), params...),
		Ctrl:   ctrlState,
	}
	if so, ok := ma.cfg.Optimizer.(ml.StatefulOptimizer); ok {
		snap.OptVecs, snap.OptStep = so.OptimizerState()
	}
	// The group epoch is the fencing base the NEXT recovery derives: it must
	// never fall below what this master itself recovered, even before the
	// resumed run's first plan exists (the anchor snapshot).
	gs := checkpoint.GroupState{Group: 0, Epoch: epoch}
	if ma.fence > gs.Epoch {
		gs.Epoch = ma.fence
	}
	for _, ms := range ctrlState.Members {
		gs.Members = append(gs.Members, ms.ID)
	}
	sort.Ints(gs.Members)
	snap.Groups = []checkpoint.GroupState{gs}
	return snap
}

func (ma *ElasticMaster) closeStore() {
	if ma.store != nil {
		_ = ma.store.Close()
	}
}

// Addr returns the address workers should dial.
func (ma *ElasticMaster) Addr() string { return ma.eng.Addr() }

// WaitForWorkers blocks until the configured MinWorkers (default s+1)
// members have joined.
func (ma *ElasticMaster) WaitForWorkers(timeout time.Duration) error {
	min := ma.cfg.MinWorkers
	if min == 0 {
		min = ma.cfg.S + 1
	}
	if err := ma.eng.WaitForMembers(min, timeout); err != nil {
		return fmt.Errorf("%w: %v", ErrTooFewWorkers, err)
	}
	return nil
}

// Run executes the elastic BSP loop: replan/migrate at iteration boundaries
// when the controller asks for it, then broadcast, collect, decode and step.
// Mid-iteration deaths that make the current epoch undecodable force an
// immediate migration and a retry of the same iteration under the new epoch.
func (ma *ElasticMaster) Run() (_ *ElasticResult, err error) {
	// Graceful shutdown from the run goroutine itself: Run is the member
	// connections' only writer, so only it may send the shutdown frames.
	// (External Close calls race Run's sends and must close cold instead.)
	// A deposed master closes cold too: its workers now belong to the
	// successor generation, and a MsgShutdown would dismiss them for good.
	defer ma.closeStore()
	defer func() { ma.eng.Shutdown(!errors.Is(err, ha.ErrFenced)) }()
	defer ma.stopRenew()
	dim := ma.cfg.Model.Dim()
	params := append([]float64(nil), ma.params...)
	res := &ElasticResult{Curve: metrics.Series{Name: "elastic"}, StartIter: ma.startIter}
	clock := ma.clock
	if ma.cfg.LossFn != nil {
		if l, err := ma.cfg.LossFn(params); err == nil {
			res.Curve.Append(clock, l)
		}
	}
	maxRetries := ma.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}

	var stats roster.Stats
	var plan *elastic.Plan
	var cache obs.CacheTracker
	for iter := ma.startIter; iter < ma.cfg.Iterations; iter++ {
		// Control decision at the iteration boundary.
		if replan, reason := ma.eng.ShouldReplan(iter); replan {
			p, err := ma.eng.Migrate(iter, reason)
			if err != nil {
				return nil, ma.fenced(err)
			}
			plan = p
		}

		retries := 0
		for {
			start := time.Now()
			// Broadcast parameters under the current epoch, then gather
			// until the strategy decodes.
			sc := ma.cfg.Obs.StartIter(iter, plan.Epoch)
			sc.SetTraceID(obs.TraceID(uint64(ma.eng.RootGen()), plan.Epoch, iter))
			sc.Phase(obs.PhaseBroadcast)
			ma.eng.BroadcastParams(plan, iter, params)
			sc.Phase(obs.PhaseCollect)
			coeffs, coded, ok := ma.eng.Collect(plan, iter, dim, ma.cfg.IterTimeout, &stats)
			if !ok {
				// The current epoch cannot complete (timeout or fatal
				// deaths): migrate to the live membership and retry this
				// iteration.
				retries++
				if retries > maxRetries {
					return nil, ma.fenced(fmt.Errorf("%w: iteration %d undecodable after %d migrations", ErrIterationTimeout, iter, retries-1))
				}
				p, err := ma.eng.Migrate(iter, "churn")
				if err != nil {
					return nil, ma.fenced(err)
				}
				plan = p
				continue
			}

			// Stitch the engine's member child spans — full contributions
			// plus every partial erased across this iteration's attempts —
			// into the trace before deriving the critical path at End.
			sc.AddMembers(ma.eng.TakeContribs(iter))
			sc.Phase(obs.PhaseDecode)
			g, err := grad.Combine(coeffs, coded, dim)
			if err != nil {
				return nil, fmt.Errorf("iteration %d combine: %w", iter, err)
			}
			g.Scale(1 / float64(ma.cfg.SampleCount))
			sc.Phase(obs.PhaseStep)
			if err := ma.cfg.Optimizer.Step(params, g); err != nil {
				return nil, fmt.Errorf("iteration %d step: %w", iter, err)
			}
			ma.step++
			elapsed := time.Since(start).Seconds()
			clock += elapsed
			res.IterTimes = append(res.IterTimes, elapsed)
			res.Epochs = append(res.Epochs, plan.Epoch)
			if ma.cfg.LossFn != nil && ma.cfg.LossEvery > 0 && (iter+1)%ma.cfg.LossEvery == 0 {
				if l, err := ma.cfg.LossFn(params); err == nil {
					res.Curve.Append(clock, l)
				}
			}
			sc.Phase(obs.PhasePersist)
			if err := ma.persist(iter, plan.Epoch, clock, params); err != nil {
				return nil, ma.fenced(err)
			}
			sc.End()
			if ma.cfg.Obs != nil {
				cs := plan.Strategy.DecodeCacheStats()
				cache.Fold(ma.cfg.Obs, plan.Strategy, cs.Hits, cs.Misses)
			}
			break
		}
	}

	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	res.StaleEpochRejected = stats.StaleEpochRejected
	res.StaleConnRejected = stats.StaleConnRejected
	res.StragglersSkipped = stats.StragglersSkipped
	res.MalformedSkipped = stats.MalformedSkipped
	res.TelemetrySamples = stats.TelemetrySamples
	res.FencedUploads = stats.FencedRejected
	res.Joins = ma.eng.Joins()
	res.Deaths = ma.eng.Deaths()
	res.Replans = ma.eng.Events()
	if ma.lease != nil {
		res.RootGen = ma.lease.Gen()
		// Training complete: stop renewing and expire the lease in place so
		// a standby is not left waiting a full TTL for a root that exited
		// cleanly. The generation stays in the file for monotonicity.
		ma.stopRenew()
		_ = ma.lease.Release()
	}
	return res, nil
}

// renewLoop extends the lease on a cadence well inside the TTL. It stops on
// the stop signal, when SuspendLeaseRenewal has been called (fault
// injection: a stalled root), or when renewal observes the fence — in the
// latter cases the lease lapses and a standby may take over; the store guard
// then fails the run typed at the next persist.
func (ma *ElasticMaster) renewLoop(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	interval := ma.lease.TTL() / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if ma.renewSuspended.Load() {
				return
			}
			if err := ma.lease.Renew(); err != nil {
				return
			}
			ma.cfg.Obs.OnRenewal()
		}
	}
}

// SuspendLeaseRenewal stops extending the HA lease without stopping the
// master — the fault-injection hook that turns this master into a zombie: it
// keeps training until a standby takes over, after which its journal writes
// and its workers' uploads are rejected and Run fails wrapping ha.ErrFenced.
// No-op without a lease.
func (ma *ElasticMaster) SuspendLeaseRenewal() { ma.renewSuspended.Store(true) }

// RootGen returns the lease generation this master holds (0 without a
// lease) — the fencing token stamped on every broadcast.
func (ma *ElasticMaster) RootGen() int {
	if ma.lease == nil {
		return 0
	}
	return ma.lease.Gen()
}

// fenced maps a run failure to the fencing error when the real cause is a
// lost lease: an error observed while a newer generation holds the lease is
// reported wrapping ha.ErrFenced and naming the usurper — the remediation
// the operator needs (this root must exit; workers follow the new token).
func (ma *ElasticMaster) fenced(err error) error {
	if ma.lease == nil || errors.Is(err, ha.ErrFenced) {
		return err
	}
	if verr := ma.lease.Verify(); verr != nil && errors.Is(verr, ha.ErrFenced) {
		return fmt.Errorf("%w (run failed: %v)", verr, err)
	}
	return err
}

// persist journals one completed iteration and snapshots the model on the
// configured cadence. No-op without a checkpoint store. A write failure —
// direct or swallowed earlier by the roster recorder — fails the run: a
// training job that silently stopped being durable is worse than a dead one.
func (ma *ElasticMaster) persist(iter, epoch int, clock float64, params []float64) error {
	if ma.store == nil {
		return nil
	}
	if err := ma.store.Err(); err != nil {
		return fmt.Errorf("iteration %d: journal writes failing: %w", iter, err)
	}
	if err := ma.store.AppendIter(iter, epoch, ma.step); err != nil {
		return fmt.Errorf("iteration %d: %w", iter, err)
	}
	if (iter+1)%ma.cfg.SnapshotEvery == 0 || iter+1 == ma.cfg.Iterations {
		snap := ma.snapshot(ma.eng.ControllerState(), iter+1, epoch, clock, params)
		if err := ma.store.WriteSnapshot(snap); err != nil {
			return fmt.Errorf("iteration %d: %w", iter, err)
		}
	}
	return nil
}

// RunElastic is the one-call entry point: it starts an elastic master on
// addr, waits up to waitTimeout for the configured MinWorkers (default s+1)
// to join, then trains to completion. Workers dial addr with
// DialElasticWorker at any time — before training starts or mid-run.
func RunElastic(cfg ElasticConfig, addr string, waitTimeout time.Duration) (*ElasticResult, error) {
	ma, err := NewElasticMaster(cfg, addr)
	if err != nil {
		return nil, err
	}
	if err := ma.WaitForWorkers(waitTimeout); err != nil {
		ma.Close()
		return nil, err
	}
	return ma.Run()
}

// StartIter returns the first iteration this master will run (non-zero
// after a checkpoint resume).
func (ma *ElasticMaster) StartIter() int { return ma.startIter }

// Close shuts down workers, the listener and the reader goroutines. Safe to
// call multiple times and from any goroutine: it closes connections cold,
// because sending shutdown frames would race Run's own writes (Run performs
// the graceful variant itself when it returns).
func (ma *ElasticMaster) Close() {
	ma.stopRenew()
	ma.eng.Shutdown(false)
	ma.closeStore()
}
