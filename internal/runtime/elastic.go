// Elastic master: the live counterpart of the internal/elastic control
// plane. Unlike Master — which freezes one strategy and treats every worker
// failure as permanent — the ElasticMaster accepts workers for the whole
// training run, ingests their per-iteration telemetry, and when the
// controller detects drift or churn it migrates the cluster to a fresh
// strategy with an epoch-versioned atomic handover: MsgReassign carries
// (epoch, assignment), parameter broadcasts are tagged with the epoch, and
// gradient uploads from any older epoch are rejected before they can reach
// decode.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// ErrMigrationFailed is returned when a forced replan (after worker deaths
// made the current epoch undecodable) cannot produce a viable strategy.
var ErrMigrationFailed = errors.New("runtime: migration failed")

// ElasticConfig configures an elastic training master.
type ElasticConfig struct {
	// K is the data-partition count, S the straggler budget; both are fixed
	// across migrations (partition indices are global and stable).
	K, S int
	// Scheme is the strategy family to plan: core.HeterAware (default) or
	// core.GroupBased.
	Scheme core.Kind
	// Model, Optimizer, InitialParams, Iterations, SampleCount, IterTimeout,
	// LossEvery and LossFn mirror MasterConfig.
	Model         ml.Model
	Optimizer     ml.Optimizer
	InitialParams []float64
	Iterations    int
	SampleCount   int
	IterTimeout   time.Duration
	LossEvery     int
	LossFn        func(params []float64) (float64, error)
	// MinWorkers is the membership required before training starts
	// (default s+1, the planning quorum).
	MinWorkers int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// MaxRetries bounds forced replan+retry attempts for a single iteration
	// after timeouts or mid-iteration deaths (default 2).
	MaxRetries int
	// Seed drives strategy construction — fixed seed, reproducible plans.
	Seed int64
}

func (c *ElasticConfig) validate() error {
	if c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.MinWorkers < 0 || (c.MinWorkers > 0 && c.MinWorkers < c.S+1) {
		return fmt.Errorf("%w: min workers %d below planning quorum s+1=%d", ErrBadConfig, c.MinWorkers, c.S+1)
	}
	return nil
}

// ElasticResult summarises an elastic training run.
type ElasticResult struct {
	// Params are the final parameters.
	Params []float64
	// IterTimes are per-iteration wall times in seconds.
	IterTimes []float64
	// Epochs records the plan epoch each iteration was decoded under.
	Epochs []int
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// Replans is the migration history (initial plan included).
	Replans []elastic.ReplanEvent
	// StaleEpochRejected counts gradient uploads rejected because they were
	// encoded under a superseded plan epoch — fenced before decode.
	StaleEpochRejected int
	// StragglersSkipped counts current-epoch uploads that arrived after
	// their iteration had already decoded.
	StragglersSkipped int
	// MalformedSkipped counts uploads rejected before decode (wrong length,
	// NaN/Inf, transport validation failures).
	MalformedSkipped int
	// TelemetrySamples counts telemetry reports ingested by the controller.
	TelemetrySamples int
	// Joins and Deaths count membership events observed during the run.
	Joins, Deaths int
}

type elasticMember struct {
	id    int
	conn  *transport.Conn
	alive bool
	// gen counts reconnects: messages and death reports from a superseded
	// connection carry an older gen and are fenced out, so a stale reader
	// can never kill a healthy rejoined member.
	gen int
}

type elasticMsg struct {
	memberID  int
	gen       int
	env       *transport.Envelope
	err       error
	malformed bool
}

// ElasticMaster drives elastic BSP training over TCP workers that may join,
// die and rejoin mid-run.
type ElasticMaster struct {
	cfg      ElasticConfig
	listener *transport.Listener
	ctrl     *elastic.Controller
	inbox    chan elasticMsg

	mu      sync.Mutex
	members map[int]*elasticMember
	nextID  int
	joins   int
	deaths  int

	joined    chan struct{} // signalled on every successful join
	stop      chan struct{}
	readers   sync.WaitGroup
	accept    sync.WaitGroup // accept loop + in-flight handshakes
	closeOnce sync.Once
}

// NewElasticMaster validates the config, prepares the control plane and
// starts accepting workers on addr (use "127.0.0.1:0" for tests). Workers
// may connect at any time between NewElasticMaster and the end of Run.
func NewElasticMaster(cfg ElasticConfig, addr string) (*ElasticMaster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctrl, err := elastic.NewController(elastic.Config{
		K: cfg.K, S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	ma := &ElasticMaster{
		cfg:      cfg,
		listener: l,
		ctrl:     ctrl,
		inbox:    make(chan elasticMsg, 64),
		members:  make(map[int]*elasticMember),
		nextID:   1, // IDs start at 1 so a zero ResumeID means "new worker"
		joined:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	ma.accept.Add(1)
	go ma.acceptLoop()
	return ma, nil
}

// Addr returns the address workers should dial.
func (ma *ElasticMaster) Addr() string { return ma.listener.Addr() }

// acceptLoop admits workers for the lifetime of the run.
func (ma *ElasticMaster) acceptLoop() {
	defer ma.accept.Done()
	for {
		conn, err := ma.listener.Accept()
		if err != nil {
			return // listener closed: run over
		}
		ma.accept.Add(1)
		go func() {
			defer ma.accept.Done()
			ma.handshake(conn)
		}()
	}
}

// handshake reads the hello, resolves the member identity (fresh join or
// rejoin) and registers the member with the control plane. The registration
// and the hello ack happen under the roster lock, serialising the ack with
// Close's shutdown sweep — the connection never has two concurrent writers.
func (ma *ElasticMaster) handshake(conn *transport.Conn) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	hello, err := conn.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		_ = conn.Close()
		return
	}
	ma.mu.Lock()
	id, gen := 0, 0
	if prev, ok := ma.members[hello.WorkerID]; ok && !prev.alive {
		// Rejoin: resume the dead member's identity (and its warm throughput
		// estimate in the controller) on a new connection generation. Close
		// the superseded connection so its readLoop unblocks (its death
		// report is fenced by the old gen) and the fd is not leaked.
		id = hello.WorkerID
		_ = prev.conn.Close()
		prev.conn = conn
		prev.alive = true
		prev.gen++
		gen = prev.gen
	} else {
		id = ma.nextID
		ma.nextID++
		ma.members[id] = &elasticMember{id: id, conn: conn, alive: true}
	}
	ma.ctrl.AddMember(id, 0)
	ma.joins++
	// Ack the hello with the assigned member ID so the worker can resume
	// this slot after a reconnect.
	ack := &transport.Envelope{Type: transport.MsgHello, WorkerID: id}
	if err := conn.Send(ack); err != nil {
		member := ma.members[id]
		member.alive = false
		ma.deaths++
		ma.ctrl.RemoveMember(id)
		ma.mu.Unlock()
		_ = conn.Close()
		return
	}
	ma.mu.Unlock()
	_ = conn.SetDeadline(time.Time{})

	select {
	case ma.joined <- struct{}{}:
	default:
	}

	ma.readers.Add(1)
	go ma.readLoop(id, gen, conn)
}

// readLoop feeds one connection generation's frames into the shared inbox.
func (ma *ElasticMaster) readLoop(id, gen int, conn *transport.Conn) {
	defer ma.readers.Done()
	for {
		env, err := conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrMalformed) {
				select {
				case ma.inbox <- elasticMsg{memberID: id, gen: gen, malformed: true}:
				case <-ma.stop:
					return
				}
				continue
			}
			select {
			case ma.inbox <- elasticMsg{memberID: id, gen: gen, err: err}:
			case <-ma.stop:
			}
			return
		}
		switch env.Type {
		case transport.MsgGradient, transport.MsgTelemetry:
			select {
			case ma.inbox <- elasticMsg{memberID: id, gen: gen, env: env}:
			case <-ma.stop:
				return
			}
		}
	}
}

// sendTo writes one envelope under a write deadline, so a stalled (but not
// disconnected) worker fails the send — and is handled as dead — instead of
// blocking the control loop forever on a full socket buffer.
func (ma *ElasticMaster) sendTo(conn *transport.Conn, env *transport.Envelope) error {
	_ = conn.SetWriteDeadline(time.Now().Add(ma.cfg.IterTimeout))
	err := conn.Send(env)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

// noteDeath marks a member dead in the roster and the control plane — but
// only if the report refers to the member's current connection generation;
// errors from a superseded connection are ignored (the member rejoined).
func (ma *ElasticMaster) noteDeath(id, gen int) {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	if m, ok := ma.members[id]; ok && m.alive && m.gen == gen {
		m.alive = false
		ma.deaths++
		ma.ctrl.RemoveMember(id)
	}
}

// WaitForWorkers blocks until the configured MinWorkers (default s+1)
// members have joined.
func (ma *ElasticMaster) WaitForWorkers(timeout time.Duration) error {
	min := ma.cfg.MinWorkers
	if min == 0 {
		min = ma.cfg.S + 1
	}
	deadline := time.After(timeout)
	for {
		ma.mu.Lock()
		n := len(ma.ctrl.AliveMembers())
		ma.mu.Unlock()
		if n >= min {
			return nil
		}
		select {
		case <-ma.joined:
		case <-deadline:
			return fmt.Errorf("%w: %d of %d workers joined before timeout", ErrTooFewWorkers, n, min)
		}
	}
}

// migrate builds the next plan and delivers (epoch, assignment) to every
// member of it. Members whose reassign send fails are marked dead; migrate
// replans until a full delivery succeeds or planning becomes infeasible.
func (ma *ElasticMaster) migrate(iter int, reason string) (*elastic.Plan, error) {
	for attempt := 0; ; attempt++ {
		ma.mu.Lock()
		total := len(ma.members)
		var plan *elastic.Plan
		var err error
		if attempt <= total+1 {
			plan, err = ma.ctrl.Replan(iter, reason)
		}
		ma.mu.Unlock()
		if attempt > total+1 {
			return nil, fmt.Errorf("%w: no stable membership after %d attempts", ErrMigrationFailed, attempt)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMigrationFailed, err)
		}
		alloc := plan.Strategy.Allocation()
		failed := false
		for slot, id := range plan.Members {
			ma.mu.Lock()
			member := ma.members[id]
			conn, gen := member.conn, member.gen
			ma.mu.Unlock()
			row := plan.Strategy.Row(slot)
			parts := alloc.Parts[slot]
			coeffs := make([]float64, len(parts))
			for i, p := range parts {
				coeffs[i] = row[p]
			}
			env := &transport.Envelope{
				Type:  transport.MsgReassign,
				Epoch: plan.Epoch,
				Assign: &transport.Assignment{
					WorkerID:   slot,
					Partitions: append([]int(nil), parts...),
					RowCoeffs:  coeffs,
					K:          ma.cfg.K,
					S:          ma.cfg.S,
				},
			}
			if err := ma.sendTo(conn, env); err != nil {
				ma.noteDeath(id, gen)
				failed = true
			}
		}
		if !failed {
			return plan, nil
		}
		reason = "churn"
	}
}

// Run executes the elastic BSP loop: replan/migrate at iteration boundaries
// when the controller asks for it, then broadcast, collect, decode and step.
// Mid-iteration deaths that make the current epoch undecodable force an
// immediate migration and a retry of the same iteration under the new epoch.
func (ma *ElasticMaster) Run() (*ElasticResult, error) {
	defer ma.Close()
	dim := ma.cfg.Model.Dim()
	params := append([]float64(nil), ma.cfg.InitialParams...)
	res := &ElasticResult{Curve: metrics.Series{Name: "elastic"}}
	clock := 0.0
	if ma.cfg.LossFn != nil {
		if l, err := ma.cfg.LossFn(params); err == nil {
			res.Curve.Append(0, l)
		}
	}
	maxRetries := ma.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}

	var plan *elastic.Plan
	for iter := 0; iter < ma.cfg.Iterations; iter++ {
		// Control decision at the iteration boundary.
		ma.mu.Lock()
		replan, reason := ma.ctrl.ShouldReplan(iter)
		ma.mu.Unlock()
		if replan {
			p, err := ma.migrate(iter, reason)
			if err != nil {
				return nil, err
			}
			plan = p
		}

		retries := 0
	attempt:
		start := time.Now()
		m := plan.Strategy.M()
		// Broadcast parameters under the current epoch.
		for _, id := range plan.Members {
			ma.mu.Lock()
			member := ma.members[id]
			conn, live, gen := member.conn, member.alive, member.gen
			ma.mu.Unlock()
			if !live {
				continue
			}
			env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Epoch: plan.Epoch, Vector: params}
			if err := ma.sendTo(conn, env); err != nil {
				ma.noteDeath(id, gen)
			}
		}
		coded := make([]grad.Gradient, m)
		alive := make([]bool, m)
		var coeffs []float64
		if !ma.epochViable(plan, alive) {
			goto migrateRetry
		}
		{
			deadline := time.NewTimer(ma.cfg.IterTimeout)
			for coeffs == nil {
				select {
				case msg := <-ma.inbox:
					if msg.malformed {
						res.MalformedSkipped++
						continue
					}
					if msg.err != nil {
						ma.noteDeath(msg.memberID, msg.gen)
						if !ma.epochViable(plan, alive) {
							deadline.Stop()
							goto migrateRetry
						}
						continue
					}
					env := msg.env
					switch env.Type {
					case transport.MsgTelemetry:
						if env.Telemetry != nil && env.Telemetry.Partitions > 0 && env.Telemetry.ComputeSeconds > 0 {
							ma.mu.Lock()
							err := ma.ctrl.Observe(msg.memberID, env.Telemetry.Partitions, env.Telemetry.ComputeSeconds)
							ma.mu.Unlock()
							if err == nil {
								res.TelemetrySamples++
							}
						}
					case transport.MsgGradient:
						// Epoch fence: uploads encoded under a superseded
						// plan are rejected before they can reach decode.
						if env.Epoch != plan.Epoch {
							res.StaleEpochRejected++
							continue
						}
						if env.Iter != iter {
							res.StragglersSkipped++
							continue
						}
						slot := plan.SlotOf(msg.memberID)
						if slot < 0 {
							res.StragglersSkipped++
							continue
						}
						if len(env.Vector) != dim || infOrNaN(env.Vector) {
							res.MalformedSkipped++
							continue
						}
						coded[slot] = env.Vector
						alive[slot] = true
						if cs, err := plan.Strategy.Decode(alive); err == nil {
							coeffs = cs
						}
					}
				case <-deadline.C:
					deadline.Stop()
					goto migrateRetry
				}
			}
			deadline.Stop()
		}

		{
			g, err := grad.Combine(coeffs, coded, dim)
			if err != nil {
				return nil, fmt.Errorf("iteration %d combine: %w", iter, err)
			}
			g.Scale(1 / float64(ma.cfg.SampleCount))
			if err := ma.cfg.Optimizer.Step(params, g); err != nil {
				return nil, fmt.Errorf("iteration %d step: %w", iter, err)
			}
			elapsed := time.Since(start).Seconds()
			clock += elapsed
			res.IterTimes = append(res.IterTimes, elapsed)
			res.Epochs = append(res.Epochs, plan.Epoch)
			if ma.cfg.LossFn != nil && ma.cfg.LossEvery > 0 && (iter+1)%ma.cfg.LossEvery == 0 {
				if l, err := ma.cfg.LossFn(params); err == nil {
					res.Curve.Append(clock, l)
				}
			}
			continue
		}

	migrateRetry:
		// The current epoch cannot complete (timeout or fatal deaths):
		// migrate to the live membership and retry this iteration.
		retries++
		if retries > maxRetries {
			return nil, fmt.Errorf("%w: iteration %d undecodable after %d migrations", ErrIterationTimeout, iter, retries-1)
		}
		p, err := ma.migrate(iter, "churn")
		if err != nil {
			return nil, err
		}
		plan = p
		goto attempt
	}

	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	ma.mu.Lock()
	res.Joins = ma.joins
	res.Deaths = ma.deaths
	res.Replans = ma.ctrl.Events()
	ma.mu.Unlock()
	return res, nil
}

// RunElastic is the one-call entry point: it starts an elastic master on
// addr, waits up to waitTimeout for the configured MinWorkers (default s+1)
// to join, then trains to completion. Workers dial addr with
// DialElasticWorker at any time — before training starts or mid-run.
func RunElastic(cfg ElasticConfig, addr string, waitTimeout time.Duration) (*ElasticResult, error) {
	ma, err := NewElasticMaster(cfg, addr)
	if err != nil {
		return nil, err
	}
	if err := ma.WaitForWorkers(waitTimeout); err != nil {
		ma.Close()
		return nil, err
	}
	return ma.Run()
}

// epochViable reports whether the current epoch can still decode if every
// live plan member eventually uploads.
func (ma *ElasticMaster) epochViable(plan *elastic.Plan, arrived []bool) bool {
	mask := make([]bool, len(plan.Members))
	ma.mu.Lock()
	for slot, id := range plan.Members {
		m, ok := ma.members[id]
		mask[slot] = arrived[slot] || (ok && m.alive)
	}
	ma.mu.Unlock()
	return plan.Strategy.CanDecode(mask)
}

// Close shuts down workers, the listener and the reader goroutines. Safe to
// call multiple times.
func (ma *ElasticMaster) Close() {
	ma.closeOnce.Do(func() {
		ma.mu.Lock()
		for _, m := range ma.members {
			if m.alive {
				// Best-effort shutdown with a short write deadline: a
				// stalled worker must not hang Close.
				_ = m.conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = m.conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
			}
		}
		for _, m := range ma.members {
			_ = m.conn.Close()
		}
		ma.mu.Unlock()
		_ = ma.listener.Close()
		ma.accept.Wait()
		// Close conns registered by handshakes that raced the sweep above,
		// so every reader goroutine unblocks.
		ma.mu.Lock()
		for _, m := range ma.members {
			_ = m.conn.Close()
		}
		ma.mu.Unlock()
		close(ma.stop)
		done := make(chan struct{})
		go func() {
			ma.readers.Wait()
			close(done)
		}()
		for {
			select {
			case <-ma.inbox:
			case <-done:
				return
			}
		}
	})
}
