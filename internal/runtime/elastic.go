// Elastic master: the live counterpart of the internal/elastic control
// plane. Unlike Master — which freezes one strategy and treats every worker
// failure as permanent — the ElasticMaster accepts workers for the whole
// training run, ingests their per-iteration telemetry, and when the
// controller detects drift or churn it migrates the cluster to a fresh
// strategy with an epoch-versioned atomic handover: MsgReassign carries
// (epoch, assignment), parameter broadcasts are tagged with the epoch, and
// gradient uploads from any older epoch are rejected before they can reach
// decode.
//
// All membership machinery — the accept loop, the join/rejoin handshake,
// connection-generation fencing, the migration broadcast and the
// epoch-fenced collect — lives in internal/roster and is shared with the
// sharded runtime's per-group masters; this file only keeps the policy:
// the BSP loop, retry budgets and result bookkeeping.
package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// ErrMigrationFailed is returned when a forced replan (after worker deaths
// made the current epoch undecodable) cannot produce a viable strategy. It
// is the roster engine's sentinel, shared with the sharded runtime.
var ErrMigrationFailed = roster.ErrMigrationFailed

// ElasticConfig configures an elastic training master.
type ElasticConfig struct {
	// K is the data-partition count, S the straggler budget; both are fixed
	// across migrations (partition indices are global and stable).
	K, S int
	// Scheme is the strategy family to plan: core.HeterAware (default) or
	// core.GroupBased.
	Scheme core.Kind
	// Model, Optimizer, InitialParams, Iterations, SampleCount, IterTimeout,
	// LossEvery and LossFn mirror MasterConfig.
	Model         ml.Model
	Optimizer     ml.Optimizer
	InitialParams []float64
	Iterations    int
	SampleCount   int
	IterTimeout   time.Duration
	LossEvery     int
	LossFn        func(params []float64) (float64, error)
	// MinWorkers is the membership required before training starts
	// (default s+1, the planning quorum).
	MinWorkers int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// MaxRetries bounds forced replan+retry attempts for a single iteration
	// after timeouts or mid-iteration deaths (default 2).
	MaxRetries int
	// Seed drives strategy construction — fixed seed, reproducible plans.
	Seed int64
}

func (c *ElasticConfig) validate() error {
	if c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.MinWorkers < 0 || (c.MinWorkers > 0 && c.MinWorkers < c.S+1) {
		return fmt.Errorf("%w: min workers %d below planning quorum s+1=%d", ErrBadConfig, c.MinWorkers, c.S+1)
	}
	return nil
}

// ElasticResult summarises an elastic training run.
type ElasticResult struct {
	// Params are the final parameters.
	Params []float64
	// IterTimes are per-iteration wall times in seconds.
	IterTimes []float64
	// Epochs records the plan epoch each iteration was decoded under.
	Epochs []int
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// Replans is the migration history (initial plan included).
	Replans []elastic.ReplanEvent
	// StaleEpochRejected counts gradient uploads rejected because they were
	// encoded under a superseded plan epoch — fenced before decode.
	StaleEpochRejected int
	// StragglersSkipped counts current-epoch uploads that arrived after
	// their iteration had already decoded.
	StragglersSkipped int
	// MalformedSkipped counts uploads rejected before decode (wrong length,
	// NaN/Inf, transport validation failures).
	MalformedSkipped int
	// StaleConnRejected counts frames rejected because they arrived from a
	// superseded connection generation (the member rejoined while they were
	// in flight).
	StaleConnRejected int
	// TelemetrySamples counts telemetry reports ingested by the controller.
	TelemetrySamples int
	// Joins and Deaths count membership events observed during the run.
	Joins, Deaths int
}

// ElasticMaster drives elastic BSP training over TCP workers that may join,
// die and rejoin mid-run. Membership and fencing are delegated to a
// roster.Engine; this type owns the training policy.
type ElasticMaster struct {
	cfg ElasticConfig
	eng *roster.Engine
}

// NewElasticMaster validates the config, prepares the control plane and
// starts accepting workers on addr (use "127.0.0.1:0" for tests). Workers
// may connect at any time between NewElasticMaster and the end of Run.
func NewElasticMaster(cfg ElasticConfig, addr string) (*ElasticMaster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctrl, err := elastic.NewController(elastic.Config{
		K: cfg.K, S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	eng, err := roster.New(roster.Config{
		Controller:   ctrl,
		WriteTimeout: cfg.IterTimeout,
		K:            cfg.K,
		S:            cfg.S,
	}, l)
	if err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &ElasticMaster{cfg: cfg, eng: eng}, nil
}

// Addr returns the address workers should dial.
func (ma *ElasticMaster) Addr() string { return ma.eng.Addr() }

// WaitForWorkers blocks until the configured MinWorkers (default s+1)
// members have joined.
func (ma *ElasticMaster) WaitForWorkers(timeout time.Duration) error {
	min := ma.cfg.MinWorkers
	if min == 0 {
		min = ma.cfg.S + 1
	}
	if err := ma.eng.WaitForMembers(min, timeout); err != nil {
		return fmt.Errorf("%w: %v", ErrTooFewWorkers, err)
	}
	return nil
}

// Run executes the elastic BSP loop: replan/migrate at iteration boundaries
// when the controller asks for it, then broadcast, collect, decode and step.
// Mid-iteration deaths that make the current epoch undecodable force an
// immediate migration and a retry of the same iteration under the new epoch.
func (ma *ElasticMaster) Run() (*ElasticResult, error) {
	// Graceful shutdown from the run goroutine itself: Run is the member
	// connections' only writer, so only it may send the shutdown frames.
	// (External Close calls race Run's sends and must close cold instead.)
	defer ma.eng.Shutdown(true)
	dim := ma.cfg.Model.Dim()
	params := append([]float64(nil), ma.cfg.InitialParams...)
	res := &ElasticResult{Curve: metrics.Series{Name: "elastic"}}
	clock := 0.0
	if ma.cfg.LossFn != nil {
		if l, err := ma.cfg.LossFn(params); err == nil {
			res.Curve.Append(0, l)
		}
	}
	maxRetries := ma.cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}

	var stats roster.Stats
	var plan *elastic.Plan
	for iter := 0; iter < ma.cfg.Iterations; iter++ {
		// Control decision at the iteration boundary.
		if replan, reason := ma.eng.ShouldReplan(iter); replan {
			p, err := ma.eng.Migrate(iter, reason)
			if err != nil {
				return nil, err
			}
			plan = p
		}

		retries := 0
		for {
			start := time.Now()
			// Broadcast parameters under the current epoch, then gather
			// until the strategy decodes.
			ma.eng.BroadcastParams(plan, iter, params)
			coeffs, coded, ok := ma.eng.Collect(plan, iter, dim, ma.cfg.IterTimeout, &stats)
			if !ok {
				// The current epoch cannot complete (timeout or fatal
				// deaths): migrate to the live membership and retry this
				// iteration.
				retries++
				if retries > maxRetries {
					return nil, fmt.Errorf("%w: iteration %d undecodable after %d migrations", ErrIterationTimeout, iter, retries-1)
				}
				p, err := ma.eng.Migrate(iter, "churn")
				if err != nil {
					return nil, err
				}
				plan = p
				continue
			}

			g, err := grad.Combine(coeffs, coded, dim)
			if err != nil {
				return nil, fmt.Errorf("iteration %d combine: %w", iter, err)
			}
			g.Scale(1 / float64(ma.cfg.SampleCount))
			if err := ma.cfg.Optimizer.Step(params, g); err != nil {
				return nil, fmt.Errorf("iteration %d step: %w", iter, err)
			}
			elapsed := time.Since(start).Seconds()
			clock += elapsed
			res.IterTimes = append(res.IterTimes, elapsed)
			res.Epochs = append(res.Epochs, plan.Epoch)
			if ma.cfg.LossFn != nil && ma.cfg.LossEvery > 0 && (iter+1)%ma.cfg.LossEvery == 0 {
				if l, err := ma.cfg.LossFn(params); err == nil {
					res.Curve.Append(clock, l)
				}
			}
			break
		}
	}

	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	res.StaleEpochRejected = stats.StaleEpochRejected
	res.StaleConnRejected = stats.StaleConnRejected
	res.StragglersSkipped = stats.StragglersSkipped
	res.MalformedSkipped = stats.MalformedSkipped
	res.TelemetrySamples = stats.TelemetrySamples
	res.Joins = ma.eng.Joins()
	res.Deaths = ma.eng.Deaths()
	res.Replans = ma.eng.Events()
	return res, nil
}

// RunElastic is the one-call entry point: it starts an elastic master on
// addr, waits up to waitTimeout for the configured MinWorkers (default s+1)
// to join, then trains to completion. Workers dial addr with
// DialElasticWorker at any time — before training starts or mid-run.
func RunElastic(cfg ElasticConfig, addr string, waitTimeout time.Duration) (*ElasticResult, error) {
	ma, err := NewElasticMaster(cfg, addr)
	if err != nil {
		return nil, err
	}
	if err := ma.WaitForWorkers(waitTimeout); err != nil {
		ma.Close()
		return nil, err
	}
	return ma.Run()
}

// Close shuts down workers, the listener and the reader goroutines. Safe to
// call multiple times and from any goroutine: it closes connections cold,
// because sending shutdown frames would race Run's own writes (Run performs
// the graceful variant itself when it returns).
func (ma *ElasticMaster) Close() {
	ma.eng.Shutdown(false)
}
