package runtime

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc/internal/dataplane"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/transport"
)

// ReconnectPolicy bounds a worker's dial attempts against a master that is
// not (yet) reachable — a root still starting up, or briefly gone during a
// failover. The zero value is exactly the historic behavior: one attempt,
// no redial.
type ReconnectPolicy struct {
	// MaxAttempts is the total number of dial attempts; 0 or 1 means a
	// single attempt (no redial).
	MaxAttempts int
	// Backoff is the wait after a failed attempt, doubling per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubling; 0 caps it at 8× Backoff.
	MaxBackoff time.Duration
}

// attempts returns the effective total attempt count.
func (p ReconnectPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// wait returns the backoff before retry number n (1-based).
func (p ReconnectPolicy) wait(n int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 8 * p.Backoff
	}
	d := p.Backoff
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// ElasticWorkerConfig configures one elastic worker process.
type ElasticWorkerConfig struct {
	// Model computes partial gradients.
	Model ml.Model
	// PartitionData returns the dataset shard for a global partition index.
	// Shards are cached across migrations, so a reassignment only fetches
	// partitions the worker has not held before. Nil means the worker has no
	// local data at all: it fetches shards over the master's data plane
	// (MsgPartitionReq/MsgPartition against the same address it dialed) —
	// the multi-machine deployment mode, where only the root holds the
	// dataset.
	PartitionData func(partition int) (*ml.Dataset, error)
	// Delay, when non-nil, injects an artificial extra delay per iteration —
	// the fault-simulation hook.
	Delay func(iter int) time.Duration
	// DelayPerPartition, when non-nil, injects an artificial delay per
	// assigned partition per iteration — it emulates a slow machine whose
	// compute time scales with its load, so migrations that shed load
	// visibly speed the worker up. Both delays count as compute time in the
	// telemetry the worker reports.
	DelayPerPartition func(iter int) time.Duration
	// DialTimeout bounds the initial connection (default 10s).
	DialTimeout time.Duration
	// ResumeID, when non-zero, asks the master to resume this member slot —
	// the reconnect handshake after a connection loss. Zero requests a fresh
	// membership.
	ResumeID int
	// Reconnect governs dial retries. The zero value preserves the historic
	// no-redial behavior: one attempt, fail fast.
	Reconnect ReconnectPolicy
	// Codecs restricts the gradient codecs this worker advertises in its
	// hello; nil advertises every non-raw codec. Advertise only CodecRaw to
	// force raw uploads regardless of the master's preference (and to mimic
	// an un-upgraded peer).
	Codecs []byte
}

// ElasticWorker is a connected elastic worker: it survives strategy
// migrations (MsgReassign) and reports per-iteration telemetry.
type ElasticWorker struct {
	cfg    ElasticWorkerConfig
	conn   *transport.Conn
	dp     *dataplane.Client // wire shard fetcher (nil with local PartitionData)
	id     int               // stable member ID assigned by the master
	codec  grad.Codec        // negotiated upload codec (raw when unadvertised)
	epoch  int
	assign *transport.Assignment
	parts  []*ml.Dataset
	cache  map[int]*ml.Dataset

	// Single-slot upload pipeline: iterate hands each iteration's sends to
	// the uploader goroutine (the connection's sole writer while Run is
	// live), so iteration k+1's compute and encode overlap upload k. The
	// capacity-1 channel bounds the pipeline at one in-flight iteration.
	up      chan func() error
	upFail  chan error    // first upload error, capacity 1
	upDrain chan struct{} // closed when the uploader exits

	// Phase timing echoed as trace spans on each upload. lastFetch is the
	// wire-fetch time of the most recent migration, attributed to the next
	// upload (amortized: a fetch serves every following iteration).
	// lastUpload (Float64bits) is the PREVIOUS iteration's send duration —
	// a sender cannot know this upload's duration before sending it. It is
	// written by the uploader goroutine and read by iterate, hence atomic.
	lastFetch  float64
	lastUpload atomic.Uint64
}

// DialElasticWorker connects to an elastic master and performs the
// hello/ack handshake, retrying per cfg.Reconnect when the master is not
// reachable. The worker has no assignment until the master's first
// MsgReassign arrives (in Run). With a nil PartitionData the worker fetches
// shards over the master's data plane at the same address.
func DialElasticWorker(addr string, cfg ElasticWorkerConfig) (*ElasticWorker, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("%w: worker needs a model", ErrBadConfig)
	}
	var lastErr error
	for attempt := 1; attempt <= cfg.Reconnect.attempts(); attempt++ {
		if attempt > 1 {
			time.Sleep(cfg.Reconnect.wait(attempt - 1))
		}
		w, err := dialElasticOnce(addr, cfg)
		if err == nil {
			return w, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// dialElasticOnce performs one dial + handshake attempt.
func dialElasticOnce(addr string, cfg ElasticWorkerConfig) (*ElasticWorker, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := transport.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	helloID := transport.HelloNewWorker
	if cfg.ResumeID > 0 {
		helloID = cfg.ResumeID
	}
	advertised := cfg.Codecs
	if advertised == nil {
		advertised = grad.AdvertiseCodecs()
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: helloID, Codecs: advertised}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	ack, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if ack.Type != transport.MsgHello || ack.WorkerID <= 0 {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: expected hello ack, got %v", ErrBadConfig, ack.Type)
	}
	// Honor the master's chosen codec only if this worker advertised it —
	// anything else (including an old master's zero value) means raw.
	codec := grad.CodecRaw
	if c := grad.Codec(ack.Codec); c != grad.CodecRaw && c.Valid() {
		for _, adv := range advertised {
			if adv == ack.Codec {
				codec = c
				break
			}
		}
	}
	w := &ElasticWorker{
		cfg:   cfg,
		conn:  conn,
		id:    ack.WorkerID,
		codec: codec,
		epoch: -1,
		cache: make(map[int]*ml.Dataset),
	}
	if w.cfg.PartitionData == nil {
		// No local data: shards come over the wire from the master's data
		// plane. The per-partition cache above makes a migration fetch only
		// the shards this worker never held.
		w.dp = dataplane.NewClient(addr, timeout)
		w.cfg.PartitionData = w.dp.Fetch
	}
	return w, nil
}

// ID returns the stable member ID the master assigned — pass it as ResumeID
// to resume this slot after a reconnect.
func (w *ElasticWorker) ID() int { return w.id }

// Epoch returns the epoch of the worker's current assignment (-1 before the
// first reassignment).
func (w *ElasticWorker) Epoch() int { return w.epoch }

// Close terminates the connection (used to script worker deaths in tests).
func (w *ElasticWorker) Close() error {
	if w.dp != nil {
		_ = w.dp.Close()
	}
	return w.conn.Close()
}

// Run processes reassignments and parameter broadcasts until shutdown or
// connection loss. For every iteration it computes and encodes the coded
// gradient of its current assignment, then hands the upload (gradient plus a
// telemetry report: compute seconds, partitions processed) to the uploader
// goroutine — so the next iteration's compute and encode overlap the
// previous upload, one iteration deep.
func (w *ElasticWorker) Run() error {
	w.up = make(chan func() error, 1)
	w.upFail = make(chan error, 1)
	w.upDrain = make(chan struct{})
	go w.uploader()
	defer func() {
		close(w.up)
		<-w.upDrain
		w.Close()
	}()
	for {
		env, err := w.conn.Recv()
		if err != nil {
			return err
		}
		switch env.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgReassign:
			if err := w.applyAssignment(env); err != nil {
				return fmt.Errorf("worker %d migrate to epoch %d: %w", w.id, env.Epoch, err)
			}
		case transport.MsgParams:
			if w.assign == nil || env.Epoch != w.epoch {
				// Parameters for an epoch this worker has not (or no longer)
				// joined — a raced migration; skip, the master fences by
				// epoch anyway.
				continue
			}
			if err := w.iterate(env); err != nil {
				return err
			}
		default:
			// Ignore unexpected frames; the master drives the protocol.
		}
	}
}

// applyAssignment installs a new epoch's assignment, fetching only
// partitions not already cached.
func (w *ElasticWorker) applyAssignment(env *transport.Envelope) error {
	fetchStart := time.Now()
	fetched := false
	parts := make([]*ml.Dataset, len(env.Assign.Partitions))
	for i, p := range env.Assign.Partitions {
		d, ok := w.cache[p]
		if !ok {
			var err error
			d, err = w.cfg.PartitionData(p)
			if err != nil {
				return fmt.Errorf("partition %d: %w", p, err)
			}
			w.cache[p] = d
			fetched = true
		}
		parts[i] = d
	}
	if fetched {
		// Cache misses mean real shard-fetch work; echo it as the next
		// upload's fetch span (cache-hit-only reassignments stay span-free).
		w.lastFetch += time.Since(fetchStart).Seconds()
	}
	w.assign = env.Assign
	w.parts = parts
	w.epoch = env.Epoch
	return nil
}

// uploader drains the upload pipeline. It is the connection's sole writer
// while Run is live; the first send failure is parked in upFail for iterate
// to surface, and later jobs still run (they fail fast on the dead
// connection) so the pipeline never blocks the compute loop.
func (w *ElasticWorker) uploader() {
	defer close(w.upDrain)
	for job := range w.up {
		if err := job(); err != nil {
			select {
			case w.upFail <- err:
			default:
			}
		}
	}
}

// submitUpload enqueues one iteration's sends, surfacing any earlier upload
// failure instead (the iteration's work is moot — the connection is gone).
func (w *ElasticWorker) submitUpload(job func() error) error {
	select {
	case err := <-w.upFail:
		return err
	default:
	}
	w.up <- job
	return nil
}

// iterate computes, encodes and uploads one iteration's coded gradient and
// telemetry.
func (w *ElasticWorker) iterate(env *transport.Envelope) error {
	computeStart := time.Now()
	partials := make([]grad.Gradient, len(w.parts))
	for i, d := range w.parts {
		g, err := w.cfg.Model.Gradient(env.Vector, d)
		if err != nil {
			return fmt.Errorf("worker %d iter %d: %w", w.id, env.Iter, err)
		}
		partials[i] = g
	}
	gradSec := time.Since(computeStart).Seconds()
	encodeStart := time.Now()
	coded := grad.GetBuffer(len(env.Vector))
	if len(partials) == 0 {
		// Zero-load assignment (the planner starved this slot): the coding
		// row is empty, so the honest upload is the zero vector — decode may
		// still hand the slot a free coefficient.
		for i := range coded {
			coded[i] = 0
		}
	} else if err := grad.EncodeInto(coded, w.assign.RowCoeffs, partials); err != nil {
		grad.PutBuffer(coded)
		return fmt.Errorf("worker %d iter %d: %w", w.id, env.Iter, err)
	}
	encodeSec := time.Since(encodeStart).Seconds()
	// Artificial slowness counts as compute so telemetry sees the machine
	// the master sees.
	var extra time.Duration
	if w.cfg.Delay != nil {
		extra += w.cfg.Delay(env.Iter)
	}
	if w.cfg.DelayPerPartition != nil {
		extra += time.Duration(len(w.parts)) * w.cfg.DelayPerPartition(env.Iter)
	}
	if extra > 0 {
		time.Sleep(extra)
	}
	compute := time.Since(computeStart).Seconds()

	out := &transport.Envelope{
		Type:     transport.MsgGradient,
		Iter:     env.Iter,
		Epoch:    w.epoch,
		WorkerID: w.id,
		// Echo the broadcast's root generation: the gradient is only valid
		// against the params of the root that sent them, so a promoted root
		// can fence uploads computed under its deposed predecessor.
		RootGen: env.RootGen,
	}
	release := func() { grad.PutBuffer(coded) }
	if w.codec != grad.CodecRaw {
		quantStart := time.Now()
		q, err := grad.AppendQuantized(grad.GetBytes(8*len(coded)), w.codec, coded)
		if err != nil {
			grad.PutBuffer(coded)
			return fmt.Errorf("worker %d iter %d: %w", w.id, env.Iter, err)
		}
		encodeSec += time.Since(quantStart).Seconds()
		out.Codec, out.Quant, out.QuantLen = byte(w.codec), q, len(coded)
		grad.PutBuffer(coded)
		release = func() { grad.PutBytes(q) }
	} else {
		out.Vector = coded
	}
	// Echo the broadcast's trace context and this worker's phase spans on the
	// upload, so the master can stitch them into its iteration trace. The
	// upload span is the PREVIOUS iteration's send (a sender cannot time its
	// own in-flight upload); the fetch span amortizes the last migration's
	// shard fetch onto the first upload after it.
	out.Trace = env.Trace
	spans := make([]transport.PhaseSpan, 0, 4)
	if w.lastFetch > 0 {
		spans = append(spans, transport.PhaseSpan{Phase: obs.PhaseFetch, Seconds: w.lastFetch})
		w.lastFetch = 0
	}
	spans = append(spans,
		transport.PhaseSpan{Phase: obs.PhaseCompute, Seconds: gradSec + extra.Seconds()},
		transport.PhaseSpan{Phase: obs.PhaseEncode, Seconds: encodeSec},
	)
	if prevUp := math.Float64frombits(w.lastUpload.Load()); prevUp > 0 {
		spans = append(spans, transport.PhaseSpan{Phase: obs.PhaseUpload, Seconds: prevUp})
	}
	out.Spans = spans
	tel := &transport.Envelope{
		Type:     transport.MsgTelemetry,
		Iter:     env.Iter,
		Epoch:    w.epoch,
		WorkerID: w.id,
		RootGen:  env.RootGen,
		Telemetry: &transport.Telemetry{
			ComputeSeconds: compute,
			Partitions:     len(w.parts),
		},
	}
	return w.submitUpload(func() error {
		uploadStart := time.Now()
		err := w.conn.Send(out)
		release()
		if err != nil {
			return err
		}
		up := time.Since(uploadStart).Seconds()
		w.lastUpload.Store(math.Float64bits(up))
		tel.Telemetry.UploadSeconds = up
		return w.conn.Send(tel)
	})
}
