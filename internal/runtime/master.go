// Package runtime is the real distributed BSP training runtime: a Master
// that assigns coded partitions, broadcasts parameters, collects coded
// gradients and decodes the aggregated gradient at the earliest decodable
// moment, and a Worker that computes, encodes and uploads partial gradients
// — the production counterpart of the paper's PyTorch deployment, exercised
// over TCP loopback in tests and examples.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// Errors returned by the runtime.
var (
	// ErrBadConfig marks invalid runtime configurations.
	ErrBadConfig = errors.New("runtime: invalid config")
	// ErrIterationTimeout is returned when an iteration cannot be decoded
	// before the deadline.
	ErrIterationTimeout = errors.New("runtime: iteration deadline exceeded before decodable")
	// ErrTooFewWorkers is returned as soon as permanently dead workers make
	// decoding impossible for every remaining straggler pattern — failing
	// fast instead of burning the full iteration timeout.
	ErrTooFewWorkers = errors.New("runtime: too few live workers to ever decode")
)

// MasterConfig configures a training master.
type MasterConfig struct {
	// Strategy is the gradient coding strategy (defines m, k, B).
	Strategy *core.Strategy
	// Model is the model being trained; only Dim() is used by the master for
	// sanity checks, optimisation state lives in Optimizer.
	Model ml.Model
	// Optimizer applies decoded gradients to the parameter vector.
	Optimizer ml.Optimizer
	// InitialParams seeds the parameter vector (length Model.Dim()).
	InitialParams []float64
	// Iterations is the number of BSP iterations to run.
	Iterations int
	// SampleCount scales gradients to means (the total training-set size).
	SampleCount int
	// IterTimeout bounds each iteration's wait for a decodable set.
	IterTimeout time.Duration
	// LossEvery, when > 0 together with LossFn, records the loss every that
	// many iterations.
	LossEvery int
	// LossFn evaluates the current parameters (e.g. mean training loss).
	LossFn func(params []float64) (float64, error)
}

func (c *MasterConfig) validate() error {
	if c.Strategy == nil || c.Model == nil || c.Optimizer == nil {
		return fmt.Errorf("%w: strategy/model/optimizer required", ErrBadConfig)
	}
	if len(c.InitialParams) != c.Model.Dim() {
		return fmt.Errorf("%w: %d initial params, model wants %d", ErrBadConfig, len(c.InitialParams), c.Model.Dim())
	}
	if c.Iterations <= 0 || c.SampleCount <= 0 {
		return fmt.Errorf("%w: iterations=%d samples=%d", ErrBadConfig, c.Iterations, c.SampleCount)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	return nil
}

// MasterResult summarises a training run.
type MasterResult struct {
	// Params are the final parameters.
	Params []float64
	// IterTimes are the per-iteration wall times in seconds.
	IterTimes []float64
	// Summary summarises IterTimes.
	Summary metrics.Summary
	// Curve is (cumulative seconds, loss) when loss recording was enabled.
	Curve metrics.Series
	// StragglersSkipped counts worker results that arrived after decode and
	// were discarded.
	StragglersSkipped int
	// MalformedSkipped counts uploads rejected before decode (wrong length,
	// NaN/Inf payloads, frames failing transport validation); the sender is
	// treated as a straggler for that iteration.
	MalformedSkipped int
	// PerWorker aggregates each worker's participation; feed the mean
	// latencies and the strategy's loads to a planner.Planner to adapt the
	// code to observed speeds.
	PerWorker []WorkerStats
}

// WorkerStats summarises one worker's behaviour over a run.
type WorkerStats struct {
	// Uploads counts gradients accepted in time for their iteration.
	Uploads int
	// Used counts iterations where the worker's gradient carried a non-zero
	// decoding coefficient.
	Used int
	// MeanLatency is the mean seconds from parameter broadcast to accepted
	// upload (0 when the worker never arrived in time).
	MeanLatency float64
}

type workerGradient struct {
	workerID  int
	iter      int
	vec       []float64
	err       error
	malformed bool // frame failed transport validation; connection still live
}

// Master runs the BSP loop over connected workers.
type Master struct {
	cfg      MasterConfig
	listener *transport.Listener
	conns    []*transport.Conn
	inbox    chan workerGradient
	readers  sync.WaitGroup
}

// NewMaster validates the config and prepares a master listening on addr
// (use "127.0.0.1:0" for tests).
func NewMaster(cfg MasterConfig, addr string) (*Master, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &Master{
		cfg:      cfg,
		listener: l,
		inbox:    make(chan workerGradient, cfg.Strategy.M()),
	}, nil
}

// Addr returns the address workers should dial.
func (ma *Master) Addr() string { return ma.listener.Addr() }

// WaitForWorkers accepts exactly m worker connections, assigns worker IDs in
// connection order and sends each its partition assignment and coding row.
func (ma *Master) WaitForWorkers(timeout time.Duration) error {
	st := ma.cfg.Strategy
	alloc := st.Allocation()
	deadline := time.Now().Add(timeout)
	for id := 0; id < st.M(); id++ {
		conn, err := ma.listener.Accept()
		if err != nil {
			return err
		}
		if err := conn.SetDeadline(deadline); err != nil {
			return err
		}
		hello, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("worker %d hello: %w", id, err)
		}
		if hello.Type != transport.MsgHello {
			return fmt.Errorf("%w: expected hello, got %v", ErrBadConfig, hello.Type)
		}
		row := st.Row(id)
		parts := alloc.Parts[id]
		coeffs := make([]float64, len(parts))
		for i, p := range parts {
			coeffs[i] = row[p]
		}
		assign := &transport.Assignment{
			WorkerID:   id,
			Partitions: append([]int(nil), parts...),
			RowCoeffs:  coeffs,
			K:          st.K(),
			S:          st.S(),
		}
		if err := conn.Send(&transport.Envelope{Type: transport.MsgAssign, Assign: assign}); err != nil {
			return err
		}
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return err
		}
		ma.conns = append(ma.conns, conn)
	}
	// One reader goroutine per worker feeds the shared inbox.
	for id, conn := range ma.conns {
		ma.readers.Add(1)
		go func(id int, conn *transport.Conn) {
			defer ma.readers.Done()
			for {
				env, err := conn.Recv()
				if err != nil {
					if errors.Is(err, transport.ErrMalformed) {
						// The gob stream is still in sync: drop the frame,
						// treat the worker as a straggler, keep reading.
						ma.inbox <- workerGradient{workerID: id, malformed: true}
						continue
					}
					ma.inbox <- workerGradient{workerID: id, err: err}
					return
				}
				if env.Type != transport.MsgGradient {
					continue
				}
				ma.inbox <- workerGradient{workerID: id, iter: env.Iter, vec: env.Vector}
			}
		}(id, conn)
	}
	return nil
}

// Run executes the BSP training loop and shuts the workers down.
func (ma *Master) Run() (*MasterResult, error) {
	defer ma.Close()
	st := ma.cfg.Strategy
	m := st.M()
	params := append([]float64(nil), ma.cfg.InitialParams...)
	res := &MasterResult{Curve: metrics.Series{Name: st.Kind().String()}}
	clock := 0.0
	if ma.cfg.LossFn != nil {
		if l, err := ma.cfg.LossFn(params); err == nil {
			res.Curve.Append(0, l)
		}
	}
	dead := make([]bool, m) // workers whose connection failed permanently
	latSum := make([]float64, m)
	uploads := make([]int, m)
	used := make([]int, m)

	for iter := 0; iter < ma.cfg.Iterations; iter++ {
		start := time.Now()
		for id, conn := range ma.conns {
			if dead[id] {
				continue
			}
			// Write deadline: a stalled (but not disconnected) worker fails
			// the broadcast and is treated as dead instead of blocking the
			// loop on a full socket buffer.
			_ = conn.SetWriteDeadline(time.Now().Add(ma.cfg.IterTimeout))
			env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Vector: params}
			err := conn.Send(env)
			_ = conn.SetWriteDeadline(time.Time{})
			if err != nil {
				dead[id] = true
			}
		}
		coded := make([]grad.Gradient, m)
		alive := make([]bool, m)
		if !decodableBestCase(ma.cfg.Strategy, dead, alive) {
			return nil, fmt.Errorf("%w: iteration %d", ErrTooFewWorkers, iter)
		}
		var coeffs []float64
		deadline := time.NewTimer(ma.cfg.IterTimeout)
	collect:
		for {
			select {
			case wg := <-ma.inbox:
				if wg.malformed {
					res.MalformedSkipped++
					continue
				}
				if wg.err != nil {
					dead[wg.workerID] = true
					// Fail fast: if even the arrival of every remaining live
					// worker could no longer decode, waiting out the timer
					// cannot help.
					if !decodableBestCase(ma.cfg.Strategy, dead, alive) {
						deadline.Stop()
						return nil, fmt.Errorf("%w: iteration %d", ErrTooFewWorkers, iter)
					}
					continue
				}
				if len(wg.vec) != ma.cfg.Model.Dim() || infOrNaN(wg.vec) {
					// Malformed upload (checked before staleness so the count
					// is independent of arrival timing): treat the worker as
					// a straggler rather than poisoning the decode.
					res.MalformedSkipped++
					continue
				}
				if wg.iter != iter {
					res.StragglersSkipped++
					continue
				}
				coded[wg.workerID] = wg.vec
				alive[wg.workerID] = true
				latSum[wg.workerID] += time.Since(start).Seconds()
				uploads[wg.workerID]++
				cs, err := st.Decode(alive)
				if err == nil {
					coeffs = cs
					break collect
				}
			case <-deadline.C:
				deadline.Stop()
				return nil, fmt.Errorf("%w: iteration %d", ErrIterationTimeout, iter)
			}
		}
		deadline.Stop()

		for w, c := range coeffs {
			if c != 0 {
				used[w]++
			}
		}
		g, err := grad.Combine(coeffs, coded, ma.cfg.Model.Dim())
		if err != nil {
			return nil, fmt.Errorf("iteration %d combine: %w", iter, err)
		}
		g.Scale(1 / float64(ma.cfg.SampleCount))
		if err := ma.cfg.Optimizer.Step(params, g); err != nil {
			return nil, fmt.Errorf("iteration %d step: %w", iter, err)
		}
		elapsed := time.Since(start).Seconds()
		clock += elapsed
		res.IterTimes = append(res.IterTimes, elapsed)
		if ma.cfg.LossFn != nil && ma.cfg.LossEvery > 0 && (iter+1)%ma.cfg.LossEvery == 0 {
			if l, err := ma.cfg.LossFn(params); err == nil {
				res.Curve.Append(clock, l)
			}
		}
	}
	res.Params = params
	res.Summary = metrics.Summarize(res.IterTimes)
	res.PerWorker = make([]WorkerStats, m)
	for w := 0; w < m; w++ {
		ws := WorkerStats{Uploads: uploads[w], Used: used[w]}
		if uploads[w] > 0 {
			ws.MeanLatency = latSum[w] / float64(uploads[w])
		}
		res.PerWorker[w] = ws
	}
	return res, nil
}

// Close shuts down workers and the listener. Safe to call multiple times.
func (ma *Master) Close() {
	for _, conn := range ma.conns {
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
	}
	for _, conn := range ma.conns {
		_ = conn.Close()
	}
	_ = ma.listener.Close()
	// Readers exit on connection errors; drain so they can post.
	done := make(chan struct{})
	go func() {
		ma.readers.Wait()
		close(done)
	}()
	for {
		select {
		case <-ma.inbox:
		case <-done:
			return
		}
	}
}

// decodableBestCase reports whether decode could still succeed if every
// non-dead worker eventually arrived — arrived uploads from since-dead
// workers still count for the current iteration.
func decodableBestCase(st *core.Strategy, dead, arrived []bool) bool {
	mask := make([]bool, len(dead))
	for i := range mask {
		mask[i] = arrived[i] || !dead[i]
	}
	return st.CanDecode(mask)
}

// infOrNaN guards against poisoned vectors from the wire.
func infOrNaN(v []float64) bool { return grad.InfOrNaN(v) }
