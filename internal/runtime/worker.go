package runtime

import (
	"fmt"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Model computes partial gradients.
	Model ml.Model
	// PartitionData returns the dataset shard for a global partition index.
	// In a real deployment each worker loads only its shards; on loopback it
	// slices the shared dataset.
	PartitionData func(partition int) (*ml.Dataset, error)
	// Delay, when non-nil, returns an artificial extra delay injected before
	// uploading each iteration's gradient — the paper's fault-simulation
	// hook ("stragglers are created artificially by adding delay").
	Delay func(iter int) time.Duration
	// DialTimeout bounds the initial connection.
	DialTimeout time.Duration
}

// Worker is a connected gradient-coding worker.
type Worker struct {
	cfg    WorkerConfig
	conn   *transport.Conn
	assign *transport.Assignment
	parts  []*ml.Dataset
}

// DialWorker connects to the master, performs the hello/assignment
// handshake and resolves its data partitions.
func DialWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.Model == nil || cfg.PartitionData == nil {
		return nil, fmt.Errorf("%w: worker needs model and partition data", ErrBadConfig)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := transport.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	env, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if env.Type != transport.MsgAssign || env.Assign == nil {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: expected assignment, got %v", ErrBadConfig, env.Type)
	}
	w := &Worker{cfg: cfg, conn: conn, assign: env.Assign}
	for _, p := range env.Assign.Partitions {
		d, err := cfg.PartitionData(p)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("worker %d partition %d: %w", env.Assign.WorkerID, p, err)
		}
		w.parts = append(w.parts, d)
	}
	return w, nil
}

// ID returns the assigned worker index.
func (w *Worker) ID() int { return w.assign.WorkerID }

// Run processes parameter broadcasts until shutdown or connection loss:
// for every iteration it computes the partial gradients of its partitions,
// encodes them with its coding row and uploads the coded gradient.
func (w *Worker) Run() error {
	defer w.conn.Close()
	for {
		env, err := w.conn.Recv()
		if err != nil {
			return err
		}
		switch env.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgParams:
			coded, err := w.computeCoded(env.Vector)
			if err != nil {
				return fmt.Errorf("worker %d iter %d: %w", w.ID(), env.Iter, err)
			}
			if w.cfg.Delay != nil {
				if d := w.cfg.Delay(env.Iter); d > 0 {
					time.Sleep(d)
				}
			}
			out := &transport.Envelope{
				Type:     transport.MsgGradient,
				Iter:     env.Iter,
				WorkerID: w.ID(),
				Vector:   coded,
			}
			err = w.conn.Send(out)
			// Send serialises synchronously, so the coded buffer can go
			// straight back to the pool.
			grad.PutBuffer(coded)
			if err != nil {
				return err
			}
		default:
			// Ignore unexpected frames; the master drives the protocol.
		}
	}
}

// computeCoded evaluates g̃ = Σ_j b_j·g_j over the worker's partitions into
// a pooled buffer (recycled by Run after the upload).
func (w *Worker) computeCoded(params []float64) ([]float64, error) {
	partials := make([]grad.Gradient, len(w.parts))
	for i, d := range w.parts {
		g, err := w.cfg.Model.Gradient(params, d)
		if err != nil {
			return nil, err
		}
		partials[i] = g
	}
	coded := grad.GetBuffer(len(params))
	if err := grad.EncodeInto(coded, w.assign.RowCoeffs, partials); err != nil {
		grad.PutBuffer(coded)
		return nil, err
	}
	return coded, nil
}
