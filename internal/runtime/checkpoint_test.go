package runtime

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/ml"
)

// TestElasticCheckpointResume runs a checkpointed training to completion,
// then constructs a second master from the directory and continues for more
// iterations — the in-package exercise of the durable-state wiring
// (the adversarial master-kill variants live in the cross-runtime
// conformance suite, internal/testkit).
func TestElasticCheckpointResume(t *testing.T) {
	fx := newElasticFixture(t, 8)
	dir := filepath.Join(t.TempDir(), "ckpt")

	cfg := fx.masterConfig(8, 1, 6)
	cfg.Optimizer = &ml.SGD{LR: 0.5, Momentum: 0.5}
	cfg.MinWorkers = 3
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 2
	ma, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		fx.spawnElasticWorker(t, ma.Addr(), &wg, nil)
	}
	if err := ma.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := ma.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.StartIter != 0 || len(res.IterTimes) != 6 {
		t.Fatalf("fresh run: start %d with %d iterations", res.StartIter, len(res.IterTimes))
	}

	// The directory now holds the finished run's state; continuing it for
	// more iterations must pick up at iteration 6 with the journal's epochs
	// fenced below the new plans.
	state, err := checkpoint.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if state.Snap == nil || state.Snap.Iter != 6 || state.LastIter != 5 {
		t.Fatalf("recovered state %+v, want snapshot at iter 6 / last iter 5", state)
	}
	preMax := state.MaxEpoch()

	cfg2 := fx.masterConfig(8, 1, 10)
	cfg2.Optimizer = &ml.SGD{LR: 0.5, Momentum: 0.5}
	cfg2.MinWorkers = 3
	cfg2.CheckpointDir = dir
	cfg2.SnapshotEvery = 2
	cfg2.Resume = true
	ma2, err := NewElasticMaster(cfg2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if ma2.StartIter() != 6 {
		t.Fatalf("resumed StartIter = %d, want 6", ma2.StartIter())
	}
	var wg2 sync.WaitGroup
	for i := 0; i < 3; i++ {
		fx.spawnElasticWorker(t, ma2.Addr(), &wg2, nil)
	}
	if err := ma2.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res2, err := ma2.Run()
	wg2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.StartIter != 6 || len(res2.IterTimes) != 4 {
		t.Fatalf("resumed run: start %d with %d iterations, want 6 with 4", res2.StartIter, len(res2.IterTimes))
	}
	if res2.Epochs[0] <= preMax {
		t.Fatalf("resumed epoch %d not above pre-resume max %d", res2.Epochs[0], preMax)
	}
	final, err := checkpoint.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.LastIter != 9 {
		t.Fatalf("final journal records last iter %d, want 9", final.LastIter)
	}
}

// TestElasticCheckpointConfigErrors pins the typed construction failures.
func TestElasticCheckpointConfigErrors(t *testing.T) {
	fx := newElasticFixture(t, 8)

	cfg := fx.masterConfig(8, 1, 4)
	cfg.Resume = true // no CheckpointDir
	if _, err := NewElasticMaster(cfg, "127.0.0.1:0"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("resume without dir: %v, want ErrBadConfig", err)
	}

	cfg = fx.masterConfig(8, 1, 4)
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "missing")
	cfg.Resume = true
	if _, err := NewElasticMaster(cfg, "127.0.0.1:0"); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("resume from missing dir: %v, want ErrNoCheckpoint", err)
	}

	// A fresh run must refuse a directory already holding state.
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := checkpoint.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cfg = fx.masterConfig(8, 1, 4)
	cfg.CheckpointDir = dir
	if _, err := NewElasticMaster(cfg, "127.0.0.1:0"); !errors.Is(err, checkpoint.ErrExists) {
		t.Fatalf("fresh run over existing state: %v, want ErrExists", err)
	}
}

// TestResumeAnchorPreservesEpochFence pins the double-crash case: a master
// that resumes and crashes again BEFORE creating any new plan must leave a
// checkpoint whose epoch fence still covers the first incarnation's epochs
// (the resume anchor snapshot is the only durable state in between).
func TestResumeAnchorPreservesEpochFence(t *testing.T) {
	fx := newElasticFixture(t, 8)
	dir := filepath.Join(t.TempDir(), "ckpt")

	cfg := fx.masterConfig(8, 1, 4)
	cfg.MinWorkers = 3
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 2
	ma, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		fx.spawnElasticWorker(t, ma.Addr(), &wg, nil)
	}
	if err := ma.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	preMax := recoverMaxEpoch(t, dir)
	if preMax < 0 {
		t.Fatalf("first run recorded max epoch %d", preMax)
	}

	// Second incarnation: constructed from the checkpoint, then killed
	// before any training (its only durable write is the anchor snapshot).
	cfg2 := cfg
	cfg2.Resume = true
	ma2, err := NewElasticMaster(cfg2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ma2.Close()

	if got := recoverMaxEpoch(t, dir); got != preMax {
		t.Fatalf("after anchor-only crash the fence is %d, want %d — a third incarnation would reuse live epochs", got, preMax)
	}
	// And a third incarnation still fences above it.
	cfg3 := cfg
	cfg3.Resume = true
	ma3, err := NewElasticMaster(cfg3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma3.Close()
	if ma3.fence != preMax {
		t.Fatalf("third incarnation recovered fence %d, want %d", ma3.fence, preMax)
	}
}

func recoverMaxEpoch(t *testing.T, dir string) int {
	t.Helper()
	st, err := checkpoint.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st.MaxEpoch()
}
