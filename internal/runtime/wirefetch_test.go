package runtime

import (
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
)

// TestElasticWireFetchedShards runs a full elastic training where no worker
// holds local data: every shard travels over the master's data plane. The
// result must be bit-identical to the same run with local partitions —
// decode is exact, so the data path must not perturb a single bit. The run
// is pinned deterministic: s=0 makes every slot's upload part of the decode
// set, and huge MinObservations/DriftThreshold freeze the planner on the
// seeded initial strategy, so both runs sum identical floats in identical
// order.
func TestElasticWireFetchedShards(t *testing.T) {
	const k, s, iters, workers = 8, 0, 10, 4
	f := newElasticFixture(t, k)

	run := func(wire bool) []float64 {
		cfg := f.masterConfig(k, s, iters)
		cfg.MinObservations = 1 << 30
		cfg.DriftThreshold = 1e18
		cfg.MinWorkers = workers
		if wire {
			cfg.PartitionSource = func(p int) (*ml.Dataset, error) { return f.parts[p], nil }
		}
		master, err := NewElasticMaster(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wcfg := ElasticWorkerConfig{Model: f.model}
				if !wire {
					wcfg.PartitionData = func(p int) (*ml.Dataset, error) { return f.parts[p], nil }
				}
				w, err := DialElasticWorker(master.Addr(), wcfg)
				if err != nil {
					return
				}
				_ = w.Run()
			}()
		}
		if err := master.WaitForWorkers(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := master.Run()
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}

	local := run(false)
	remote := run(true)
	if len(local) != len(remote) {
		t.Fatalf("param dims differ: %d vs %d", len(local), len(remote))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("param %d differs: wire-fetched %v, local %v", i, remote[i], local[i])
		}
	}
}

// TestWorkerWithoutDataNeedsServingMaster: dialing a master with no
// PartitionSource while carrying no local data must fail at the first
// assignment (not hang) — the not-served marker surfaces as a run error.
func TestWorkerWithoutDataNeedsServingMaster(t *testing.T) {
	const k, s = 4, 0
	f := newElasticFixture(t, k)
	master, err := NewElasticMaster(f.masterConfig(k, s, 2), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	errCh := make(chan error, 1)
	go func() {
		w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{Model: f.model})
		if err != nil {
			errCh <- err
			return
		}
		errCh <- w.Run()
	}()
	if err := master.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = master.Run() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("worker run succeeded without any data source")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker hung instead of failing on unserved partition")
	}
}

func TestReconnectPolicyRetriesDial(t *testing.T) {
	f := newElasticFixture(t, 4)
	data := func(p int) (*ml.Dataset, error) { return f.parts[p], nil }

	// Against a dead port, the policy burns every attempt (with backoff
	// between them) before failing.
	start := time.Now()
	_, err := DialElasticWorker("127.0.0.1:1", ElasticWorkerConfig{
		Model: f.model, PartitionData: data,
		DialTimeout: 200 * time.Millisecond,
		Reconnect:   ReconnectPolicy{MaxAttempts: 3, Backoff: 30 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("dial against dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("3 attempts with 30ms backoff returned after %v — retries not happening", elapsed)
	}

	// Zero value: a single attempt against the same dead port fails without
	// any backoff sleeps.
	start = time.Now()
	if _, err := DialElasticWorker("127.0.0.1:1", ElasticWorkerConfig{
		Model: f.model, PartitionData: data,
		DialTimeout: 200 * time.Millisecond,
	}); err == nil {
		t.Fatal("zero-value policy should fail fast on a dead port")
	}

	// With a live master, a retrying dial still succeeds on the first try.
	master, err := NewElasticMaster(f.masterConfig(4, 0, 1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
		Model: f.model, PartitionData: data,
		Reconnect: ReconnectPolicy{MaxAttempts: 5, Backoff: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("retrying dial against live master: %v", err)
	}
	w.Close()
}

func TestReconnectPolicyBackoffSchedule(t *testing.T) {
	p := ReconnectPolicy{MaxAttempts: 6, Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35, 35}
	for i, w := range want {
		if got := p.wait(i + 1); got != w*time.Millisecond {
			t.Fatalf("wait(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	var zero ReconnectPolicy
	if zero.attempts() != 1 || zero.wait(1) != 0 {
		t.Fatalf("zero policy: attempts=%d wait=%v, want 1 and 0", zero.attempts(), zero.wait(1))
	}
}
