// Trace stitching under churn: the wire-propagated trace context and the
// root-synthesized partial spans must survive the adversarial schedules the
// conformance harness scripts — a worker killed between broadcast and
// upload yields a partial member span labeled with its erasure reason, and
// iterations completed after a migration carry the new epoch in their trace
// context identifier.
package runtime_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/testkit"
)

func TestTraceStitchingUnderChurnFlat(t *testing.T) {
	fx, err := testkit.NewFixture(8, 300)
	if err != nil {
		t.Fatal(err)
	}
	sc := &testkit.Scenario{
		Name: "trace-stitch", K: 8, S: 1, Workers: 8, GroupSize: 4, Iters: 20,
		IterTimeout: 5 * time.Second, InitialRate: 500,
		Alpha: 0.7, DriftThreshold: 2.0, MinObservations: 2, CooldownIters: 1 << 20,
		Behaviors: map[int]testkit.Behavior{
			// Two workers of one coding group vanish between the broadcast
			// and their uploads — the mid-iteration death the RDead partial
			// span exists for.
			0: {KillAtIter: 6},
			1: {KillAtIter: 6},
		},
	}
	tel := obs.New()
	ma, err := runtime.NewElasticMaster(runtime.ElasticConfig{
		K: sc.K, S: sc.S,
		Model:           fx.Model,
		Optimizer:       &ml.SGD{LR: 0.5},
		InitialParams:   fx.Model.InitParams(nil),
		Iterations:      sc.Iters,
		SampleCount:     fx.Data.N(),
		IterTimeout:     sc.IterTimeout,
		MinWorkers:      sc.Workers,
		Alpha:           sc.Alpha,
		DriftThreshold:  sc.DriftThreshold,
		MinObservations: sc.MinObservations,
		CooldownIters:   sc.CooldownIters,
		InitialRate:     sc.InitialRate,
		Seed:            1,
		TelemetryConfig: clustercfg.TelemetryConfig{Obs: tel},
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()

	addrs := make([]string, sc.Workers)
	for i := range addrs {
		addrs[i] = ma.Addr()
	}
	var wg sync.WaitGroup
	var progress atomic.Int64
	testkit.DriveWorkers(sc, addrs, fx, &wg, &progress)
	if err := ma.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := ma.Run()
	ma.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[len(res.Epochs)-1] < 1 {
		t.Fatalf("no migration happened (final epoch %d) — the scenario lost its teeth", res.Epochs[len(res.Epochs)-1])
	}

	traces := tel.Tracer().Recent(0)
	if len(traces) != sc.Iters {
		t.Fatalf("trace ring holds %d iterations, want %d", len(traces), sc.Iters)
	}

	var sawDead, sawFull, sawMigrated bool
	for _, tr := range traces {
		// Every recorded trace carries the wire trace context, and the ID
		// encodes the epoch the iteration actually completed under — a
		// post-migration iteration carries the new epoch.
		if want := obs.TraceID(0, tr.Epoch, tr.Iter); tr.TraceID != want {
			t.Fatalf("iter %d: trace id %#x does not encode (epoch=%d, iter=%d): want %#x",
				tr.Iter, tr.TraceID, tr.Epoch, tr.Iter, want)
		}
		if tr.Epoch >= 1 {
			sawMigrated = true
		}
		for _, ms := range tr.Members {
			if ms.Partial {
				if ms.Reason == "" {
					t.Fatalf("iter %d: partial span for member %d has no erasure reason", tr.Iter, ms.Member)
				}
				if ms.Reason == obs.RDead {
					sawDead = true
				}
			} else {
				sawFull = true
				if ms.Arrival <= 0 {
					t.Fatalf("iter %d: full contribution from member %d with non-positive arrival %v",
						tr.Iter, ms.Member, ms.Arrival)
				}
			}
		}
	}
	if !sawDead {
		t.Error("no mid-iteration death was stitched as a partial span with reason \"dead\"")
	}
	if !sawFull {
		t.Error("no full contribution was stitched into any trace")
	}
	if !sawMigrated {
		t.Error("no recorded trace carries a post-migration epoch")
	}

	// The stitched spans fed the attribution families: the erasure counter
	// carries the dead members by reason, and the report window is live.
	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `reason="`+obs.RDead+`"`) {
		t.Error("erasure counter has no dead-reason series")
	}
	if rep := tel.StragglerReport(0); rep.WindowIters == 0 || len(rep.Members) == 0 {
		t.Errorf("straggler report empty: %+v", rep)
	}
}
