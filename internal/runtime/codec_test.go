package runtime

import (
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// runElasticWithCodec runs a small churn-free loopback cluster under the
// given master codec preference and returns the final parameters. Replans are
// disabled, workers dial sequentially, and s=0 means every iteration decodes
// from ALL workers — Collect returns on the first decodable subset, so any
// straggler tolerance would let scheduling jitter pick different subsets
// (and different float summation) across two otherwise identical runs.
func runElasticWithCodec(t *testing.T, f *elasticFixture, codec string, workerCodecs []byte) []float64 {
	t.Helper()
	const k, s, iters, workers = 4, 0, 8, 3
	cfg := f.masterConfig(k, s, iters)
	cfg.MinWorkers = workers
	cfg.DriftThreshold = 1e9
	cfg.CooldownIters = 1 << 30
	cfg.LossEvery = 0
	cfg.LossFn = nil
	cfg.Wire = clustercfg.WireConfig{Codec: codec}
	master, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
			Model:         f.model,
			PartitionData: func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
			Codecs:        workerCodecs,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res.Params
}

// TestElasticCodecDeltaBitIdentical is the lossless acceptance criterion on a
// live loopback cluster: training under the delta codec must produce final
// parameters bit-identical to the raw float64 run.
func TestElasticCodecDeltaBitIdentical(t *testing.T) {
	f := newElasticFixture(t, 4)
	raw := runElasticWithCodec(t, f, "", nil)
	delta := runElasticWithCodec(t, f, "delta", nil)
	if len(raw) != len(delta) {
		t.Fatalf("param lengths differ: %d vs %d", len(raw), len(delta))
	}
	for i := range raw {
		if raw[i] != delta[i] {
			t.Fatalf("param %d differs under delta codec: %v vs %v", i, raw[i], delta[i])
		}
	}
}

// TestElasticCodecInt8Negotiated proves the lossy path end to end: a master
// preferring int8 negotiates it with advertising workers, the uploads travel
// quantized (visible in the per-codec wire counters), and training still
// converges to a sane model.
func TestElasticCodecInt8Negotiated(t *testing.T) {
	f := newElasticFixture(t, 4)
	_, _, _, beforeOut := transport.WireCodec(byte(grad.CodecInt8))
	params := runElasticWithCodec(t, f, "int8", nil)
	_, _, _, afterOut := transport.WireCodec(byte(grad.CodecInt8))
	if afterOut <= beforeOut {
		t.Fatalf("no int8 gradient bytes on the wire (out: %d -> %d)", beforeOut, afterOut)
	}
	loss, err := ml.MeanLoss(f.model, params, f.data)
	if err != nil {
		t.Fatal(err)
	}
	initLoss, err := ml.MeanLoss(f.model, f.model.InitParams(nil), f.data)
	if err != nil {
		t.Fatal(err)
	}
	if loss >= initLoss {
		t.Fatalf("int8 training did not improve loss: %v -> %v", initLoss, loss)
	}
}

// TestElasticCodecMixedVersionFallback proves interop: workers that only
// advertise raw (an un-upgraded build) keep uploading raw float64 even when
// the master prefers int8, and the run completes.
func TestElasticCodecMixedVersionFallback(t *testing.T) {
	f := newElasticFixture(t, 4)
	_, _, _, rawBefore := transport.WireCodec(byte(grad.CodecRaw))
	params := runElasticWithCodec(t, f, "int8", []byte{byte(grad.CodecRaw)})
	_, _, _, rawAfter := transport.WireCodec(byte(grad.CodecRaw))
	if rawAfter <= rawBefore {
		t.Fatalf("raw-only workers produced no raw gradient traffic (out: %d -> %d)", rawBefore, rawAfter)
	}
	if len(params) != f.model.Dim() {
		t.Fatalf("got %d params, want %d", len(params), f.model.Dim())
	}
}

// TestElasticCodecConfigRejected pins the config error for an unknown codec
// name.
func TestElasticCodecConfigRejected(t *testing.T) {
	f := newElasticFixture(t, 4)
	cfg := f.masterConfig(4, 1, 1)
	cfg.Wire.Codec = "zstd"
	if _, err := NewElasticMaster(cfg, "127.0.0.1:0"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
