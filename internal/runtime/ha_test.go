package runtime

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ha"
)

// TestElasticLeaseLifecycle runs a leased master to completion: it must hold
// generation 1 throughout, renew in the background, fence nothing, and leave
// the lease expired-in-place on a clean exit so a standby is never left
// waiting a full TTL for a root that is already gone.
func TestElasticLeaseLifecycle(t *testing.T) {
	const k, s, iters = 4, 1, 6
	fx := newElasticFixture(t, k)
	cfg := fx.masterConfig(k, s, iters)
	cfg.CheckpointDir = t.TempDir()
	cfg.SnapshotEvery = 2
	cfg.LeaseTTL = 200 * time.Millisecond

	ma, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	if got := ma.RootGen(); got != 1 {
		t.Fatalf("fresh leased master holds generation %d, want 1", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		// Slow iterations past the renew cadence (TTL/3) so the run exercises
		// background renewal, not just the initial acquisition.
		fx.spawnElasticWorker(t, ma.Addr(), &wg, func(int) time.Duration { return 15 * time.Millisecond })
	}
	if err := ma.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := ma.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if res.RootGen != 1 {
		t.Fatalf("result reports generation %d, want 1", res.RootGen)
	}
	if res.FencedUploads != 0 {
		t.Fatalf("crash-free run fenced %d uploads", res.FencedUploads)
	}
	tok, err := ha.ReadToken(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Gen != 1 {
		t.Fatalf("lease file holds generation %d after the run, want 1", tok.Gen)
	}
	if !tok.Expired(time.Now()) {
		t.Fatal("clean shutdown left a live lease behind")
	}
}

// TestElasticDeposedMasterFenced wedges a leased master before it trains:
// renewal is suspended, the lease lapses, and a usurper acquires generation
// 2. The deposed master's run must fail wrapping ha.ErrFenced and name the
// generation that superseded it, without touching the usurper's claim.
func TestElasticDeposedMasterFenced(t *testing.T) {
	const k, s, iters = 4, 1, 6
	fx := newElasticFixture(t, k)
	cfg := fx.masterConfig(k, s, iters)
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 2
	cfg.LeaseTTL = 150 * time.Millisecond

	ma, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	ma.SuspendLeaseRenewal()

	deadline := time.Now().Add(10 * time.Second)
	for {
		tok, err := ha.ReadToken(dir)
		if err != nil {
			t.Fatal(err)
		}
		if tok.Expired(time.Now()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("suspended lease never lapsed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	usurper, err := ha.Acquire(dir, "usurper", "127.0.0.1:9", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer usurper.Release()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		fx.spawnElasticWorker(t, ma.Addr(), &wg, nil)
	}
	if err := ma.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, err = ma.Run()
	if !errors.Is(err, ha.ErrFenced) {
		t.Fatalf("deposed master failed with %v, want ha.ErrFenced", err)
	}
	if !strings.Contains(err.Error(), "deposed by generation 2") {
		t.Fatalf("fenced error does not name the usurping generation: %v", err)
	}
	ma.Close()
	wg.Wait()

	if got := usurper.Gen(); got != 2 {
		t.Fatalf("usurper holds generation %d after fencing, want 2", got)
	}
	if err := usurper.Verify(); err != nil {
		t.Fatalf("usurper's claim was disturbed: %v", err)
	}
}
