package runtime

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// launch starts a master plus m loopback workers and returns the run result.
func launch(t *testing.T, st *core.Strategy, delay func(worker, iter int) time.Duration, iters int) (*MasterResult, error) {
	t.Helper()
	data, err := ml.GaussianMixture(7*20, 4, 3, 3, rng(100))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(st.K())
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 4, NumClasses: 3}
	cfg := MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &ml.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   5 * time.Second,
		LossEvery:     1,
		LossFn: func(p []float64) (float64, error) {
			return ml.MeanLoss(model, p, data)
		},
	}
	master, err := NewMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := master.Addr()

	var wg sync.WaitGroup
	for i := 0; i < st.M(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcfg := WorkerConfig{
				Model: model,
				PartitionData: func(p int) (*ml.Dataset, error) {
					return parts[p], nil
				},
			}
			if delay != nil {
				wcfg.Delay = func(iter int) time.Duration { return delay(i, iter) }
			}
			w, err := DialWorker(addr, wcfg)
			if err != nil {
				return // master may have shut down after test failure
			}
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, runErr := master.Run()
	wg.Wait()
	return res, runErr
}

func TestMasterConfigValidation(t *testing.T) {
	st, _ := core.NewNaive(2)
	model := &ml.Softmax{InputDim: 2, NumClasses: 2}
	bad := []MasterConfig{
		{},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: []float64{1}, Iterations: 1, SampleCount: 1, IterTimeout: time.Second},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: model.InitParams(nil), Iterations: 0, SampleCount: 1, IterTimeout: time.Second},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: model.InitParams(nil), Iterations: 1, SampleCount: 1},
	}
	for i, cfg := range bad {
		if _, err := NewMaster(cfg, "127.0.0.1:0"); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestDialWorkerValidation(t *testing.T) {
	if _, err := DialWorker("127.0.0.1:1", WorkerConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndHeterAwareTraining(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 15 {
		t.Fatalf("got %d iterations", len(res.IterTimes))
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestEndToEndToleratesStraggler(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 is 150ms late on iteration 0 while everyone runs ~30ms
	// iterations: its stale upload lands mid-run and must be discarded, and
	// the delay must not extend any iteration.
	slow := func(worker, iter int) time.Duration {
		if worker == 0 && iter == 0 {
			return 150 * time.Millisecond
		}
		return 30 * time.Millisecond
	}
	start := time.Now()
	res, err := launch(t, st, slow, 8)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2500*time.Millisecond {
		t.Fatalf("straggler delay leaked into iteration times: total %v", elapsed)
	}
	if res.StragglersSkipped == 0 {
		t.Fatal("late gradients should have been discarded at least once")
	}
}

func TestEndToEndGroupBased(t *testing.T) {
	st, err := core.NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first {
		t.Fatalf("group-based loss did not drop: %v -> %v", first, last)
	}
}

func TestEndToEndNaiveTimesOutOnDeadWorker(t *testing.T) {
	st, err := core.NewNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.GaussianMixture(30, 3, 2, 3, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 3, NumClasses: 2}
	cfg := MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &ml.SGD{LR: 0.1},
		InitialParams: model.InitParams(nil),
		Iterations:    3,
		SampleCount:   data.N(),
		IterTimeout:   400 * time.Millisecond,
	}
	master, err := NewMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcfg := WorkerConfig{
				Model:         model,
				PartitionData: func(p int) (*ml.Dataset, error) { return parts[p], nil },
			}
			if i == 2 {
				// Effectively dead: delays far beyond the iteration timeout.
				wcfg.Delay = func(int) time.Duration { return 2 * time.Second }
			}
			w, err := DialWorker(master.Addr(), wcfg)
			if err != nil {
				return
			}
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, runErr := master.Run()
	wg.Wait()
	if !errors.Is(runErr, ErrIterationTimeout) {
		t.Fatalf("err = %v, want ErrIterationTimeout", runErr)
	}
}

func TestPerWorkerStats(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 5 {
		t.Fatalf("per-worker stats = %d entries", len(res.PerWorker))
	}
	totalUsed := 0
	for w, ws := range res.PerWorker {
		totalUsed += ws.Used
		if ws.Uploads > 0 && ws.MeanLatency <= 0 {
			t.Fatalf("worker %d uploaded %d times but latency %v", w, ws.Uploads, ws.MeanLatency)
		}
	}
	// Every iteration uses at least m-s = 4 workers' coefficients... at
	// minimum one worker per iteration.
	if totalUsed < 6 {
		t.Fatalf("used totals %d, want >= iterations", totalUsed)
	}
}

// rawWorker is a transport-level fake worker: it performs the handshake and
// exposes the connection so tests can script deaths, poison uploads and
// protocol violations that the real Worker would never produce.
type rawWorker struct {
	conn   *transport.Conn
	assign *transport.Assignment
	parts  []*ml.Dataset // indexed by global partition
	model  ml.Model
}

func dialRawWorker(t *testing.T, addr string, model ml.Model, parts []*ml.Dataset) *rawWorker {
	t.Helper()
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello}); err != nil {
		t.Fatal(err)
	}
	env, err := conn.Recv()
	if err != nil || env.Type != transport.MsgAssign {
		t.Fatalf("handshake: %+v err %v", env, err)
	}
	return &rawWorker{conn: conn, assign: env.Assign, model: model, parts: parts}
}

// gradient computes the honest coded gradient for the given parameters.
func (rw *rawWorker) gradient(t *testing.T, params []float64) []float64 {
	t.Helper()
	coded, err := codedGradient(rw.model, rw.parts, rw.assign, params)
	if err != nil {
		t.Fatal(err)
	}
	return coded
}

// masterFixture builds a master plus the shared dataset/partitions.
type masterFixture struct {
	master *Master
	model  ml.Model
	data   *ml.Dataset
	parts  []*ml.Dataset
}

func newMasterFixture(t *testing.T, st *core.Strategy, iters int, timeout time.Duration) *masterFixture {
	t.Helper()
	data, err := ml.GaussianMixture(st.K()*20, 4, 3, 3, rng(200))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(st.K())
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 4, NumClasses: 3}
	cfg := MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &ml.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   timeout,
		LossEvery:     1,
		LossFn: func(p []float64) (float64, error) {
			return ml.MeanLoss(model, p, data)
		},
	}
	master, err := NewMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &masterFixture{master: master, model: model, data: data, parts: parts}
}

func (f *masterFixture) spawnHonestWorkers(t *testing.T, n int, wg *sync.WaitGroup) {
	t.Helper()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := DialWorker(f.master.Addr(), WorkerConfig{
				Model:         f.model,
				PartitionData: func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
			})
			if err != nil {
				return
			}
			_ = w.Run()
		}()
	}
}

// TestFailFastWhenDecodeImpossible: with a naive (s=0) strategy every worker
// is required, so one death must surface ErrTooFewWorkers immediately
// instead of burning the 30s iteration timeout.
func TestFailFastWhenDecodeImpossible(t *testing.T) {
	st, err := core.NewNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	f := newMasterFixture(t, st, 5, 30*time.Second)
	var wg sync.WaitGroup
	f.spawnHonestWorkers(t, 2, &wg)
	dying := make(chan *rawWorker, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		dying <- dialRawWorker(t, f.master.Addr(), f.model, f.parts)
	}()
	if err := f.master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rw := <-dying
	rw.conn.Close() // dies before uploading anything

	start := time.Now()
	_, runErr := f.master.Run()
	elapsed := time.Since(start)
	wg.Wait()
	if !errors.Is(runErr, ErrTooFewWorkers) {
		t.Fatalf("err = %v, want ErrTooFewWorkers", runErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("fail-fast took %v — the iteration timeout leaked in", elapsed)
	}
}

// TestWorkerDiesMidTrainingConverges: with s=1 redundancy, one worker dying
// after a few iterations must not stop training — the master decodes from
// the survivors and the loss still drops.
func TestWorkerDiesMidTrainingConverges(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(31))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 12
	f := newMasterFixture(t, st, iters, 5*time.Second)
	var wg sync.WaitGroup
	f.spawnHonestWorkers(t, 4, &wg)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rw := dialRawWorker(t, f.master.Addr(), f.model, f.parts)
		defer rw.conn.Close()
		for n := 0; ; n++ {
			env, err := rw.conn.Recv()
			if err != nil {
				return
			}
			if env.Type == transport.MsgShutdown {
				return
			}
			if env.Type != transport.MsgParams {
				continue
			}
			if n >= 3 {
				return // dies mid-training, conn closed by defer
			}
			out := &transport.Envelope{
				Type:     transport.MsgGradient,
				Iter:     env.Iter,
				WorkerID: rw.assign.WorkerID,
				Vector:   rw.gradient(t, env.Vector),
			}
			if err := rw.conn.Send(out); err != nil {
				return
			}
		}
	}()
	if err := f.master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, runErr := f.master.Run()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(res.IterTimes) != iters {
		t.Fatalf("completed %d iterations, want %d", len(res.IterTimes), iters)
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first*0.8 {
		t.Fatalf("loss did not drop after mid-training death: %v -> %v", first, last)
	}
}

// TestMalformedUploadsCountedAsStragglers: NaN payloads, wrong-dimension
// vectors and transport-invalid frames must be skipped (and counted), with
// training carried by the honest workers.
func TestMalformedUploadsCountedAsStragglers(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 1, 1}, 4, 1, rng(32))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6
	f := newMasterFixture(t, st, iters, 5*time.Second)
	var wg sync.WaitGroup
	f.spawnHonestWorkers(t, 2, &wg)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rw := dialRawWorker(t, f.master.Addr(), f.model, f.parts)
		defer rw.conn.Close()
		for {
			env, err := rw.conn.Recv()
			if err != nil || env.Type == transport.MsgShutdown {
				return
			}
			if env.Type != transport.MsgParams {
				continue
			}
			var out *transport.Envelope
			switch env.Iter % 3 {
			case 0: // NaN poison — passes transport, guarded by the master
				vec := make([]float64, len(env.Vector))
				vec[0] = math.NaN()
				out = &transport.Envelope{Type: transport.MsgGradient, Iter: env.Iter, Vector: vec}
			case 1: // wrong dimension
				out = &transport.Envelope{Type: transport.MsgGradient, Iter: env.Iter, Vector: []float64{1, 2}}
			case 2: // transport-invalid frame: negative iteration
				out = &transport.Envelope{Type: transport.MsgGradient, Iter: -1, Vector: []float64{1}}
			}
			if err := rw.conn.Send(out); err != nil {
				return
			}
		}
	}()
	if err := f.master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, runErr := f.master.Run()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(res.IterTimes) != iters {
		t.Fatalf("completed %d iterations, want %d", len(res.IterTimes), iters)
	}
	// One bad upload per iteration; the final one may still be in flight
	// when the run completes.
	if res.MalformedSkipped < iters-1 {
		t.Fatalf("MalformedSkipped = %d, want ≥ %d (one bad upload per iteration)", res.MalformedSkipped, iters-1)
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first {
		t.Fatalf("loss did not drop alongside malformed uploads: %v -> %v", first, last)
	}
}
