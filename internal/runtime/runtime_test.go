package runtime

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/ml"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// launch starts a master plus m loopback workers and returns the run result.
func launch(t *testing.T, st *core.Strategy, delay func(worker, iter int) time.Duration, iters int) (*MasterResult, error) {
	t.Helper()
	data, err := ml.GaussianMixture(7*20, 4, 3, 3, rng(100))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(st.K())
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 4, NumClasses: 3}
	cfg := MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &ml.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   5 * time.Second,
		LossEvery:     1,
		LossFn: func(p []float64) (float64, error) {
			return ml.MeanLoss(model, p, data)
		},
	}
	master, err := NewMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := master.Addr()

	var wg sync.WaitGroup
	for i := 0; i < st.M(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcfg := WorkerConfig{
				Model: model,
				PartitionData: func(p int) (*ml.Dataset, error) {
					return parts[p], nil
				},
			}
			if delay != nil {
				wcfg.Delay = func(iter int) time.Duration { return delay(i, iter) }
			}
			w, err := DialWorker(addr, wcfg)
			if err != nil {
				return // master may have shut down after test failure
			}
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, runErr := master.Run()
	wg.Wait()
	return res, runErr
}

func TestMasterConfigValidation(t *testing.T) {
	st, _ := core.NewNaive(2)
	model := &ml.Softmax{InputDim: 2, NumClasses: 2}
	bad := []MasterConfig{
		{},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: []float64{1}, Iterations: 1, SampleCount: 1, IterTimeout: time.Second},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: model.InitParams(nil), Iterations: 0, SampleCount: 1, IterTimeout: time.Second},
		{Strategy: st, Model: model, Optimizer: &ml.SGD{LR: 1}, InitialParams: model.InitParams(nil), Iterations: 1, SampleCount: 1},
	}
	for i, cfg := range bad {
		if _, err := NewMaster(cfg, "127.0.0.1:0"); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestDialWorkerValidation(t *testing.T) {
	if _, err := DialWorker("127.0.0.1:1", WorkerConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndHeterAwareTraining(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 15 {
		t.Fatalf("got %d iterations", len(res.IterTimes))
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestEndToEndToleratesStraggler(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 is 150ms late on iteration 0 while everyone runs ~30ms
	// iterations: its stale upload lands mid-run and must be discarded, and
	// the delay must not extend any iteration.
	slow := func(worker, iter int) time.Duration {
		if worker == 0 && iter == 0 {
			return 150 * time.Millisecond
		}
		return 30 * time.Millisecond
	}
	start := time.Now()
	res, err := launch(t, st, slow, 8)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2500*time.Millisecond {
		t.Fatalf("straggler delay leaked into iteration times: total %v", elapsed)
	}
	if res.StragglersSkipped == 0 {
		t.Fatal("late gradients should have been discarded at least once")
	}
}

func TestEndToEndGroupBased(t *testing.T) {
	st, err := core.NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve.Points[0].Y
	last := res.Curve.Points[len(res.Curve.Points)-1].Y
	if last >= first {
		t.Fatalf("group-based loss did not drop: %v -> %v", first, last)
	}
}

func TestEndToEndNaiveTimesOutOnDeadWorker(t *testing.T) {
	st, err := core.NewNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.GaussianMixture(30, 3, 2, 3, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 3, NumClasses: 2}
	cfg := MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &ml.SGD{LR: 0.1},
		InitialParams: model.InitParams(nil),
		Iterations:    3,
		SampleCount:   data.N(),
		IterTimeout:   400 * time.Millisecond,
	}
	master, err := NewMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcfg := WorkerConfig{
				Model:         model,
				PartitionData: func(p int) (*ml.Dataset, error) { return parts[p], nil },
			}
			if i == 2 {
				// Effectively dead: delays far beyond the iteration timeout.
				wcfg.Delay = func(int) time.Duration { return 2 * time.Second }
			}
			w, err := DialWorker(master.Addr(), wcfg)
			if err != nil {
				return
			}
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, runErr := master.Run()
	wg.Wait()
	if !errors.Is(runErr, ErrIterationTimeout) {
		t.Fatalf("err = %v, want ErrIterationTimeout", runErr)
	}
}

func TestPerWorkerStats(t *testing.T) {
	st, err := core.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := launch(t, st, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 5 {
		t.Fatalf("per-worker stats = %d entries", len(res.PerWorker))
	}
	totalUsed := 0
	for w, ws := range res.PerWorker {
		totalUsed += ws.Used
		if ws.Uploads > 0 && ws.MeanLatency <= 0 {
			t.Fatalf("worker %d uploaded %d times but latency %v", w, ws.Uploads, ws.MeanLatency)
		}
	}
	// Every iteration uses at least m-s = 4 workers' coefficients... at
	// minimum one worker per iteration.
	if totalUsed < 6 {
		t.Fatalf("used totals %d, want >= iterations", totalUsed)
	}
}
