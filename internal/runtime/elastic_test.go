package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/transport"
)

// elasticFixture is shared scaffolding for elastic end-to-end tests: a
// dataset split into k partitions and a softmax model.
type elasticFixture struct {
	model *ml.Softmax
	data  *ml.Dataset
	parts []*ml.Dataset
}

func newElasticFixture(t *testing.T, k int) *elasticFixture {
	t.Helper()
	data, err := ml.GaussianMixture(k*20, 4, 3, 3, rng(300))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(k)
	if err != nil {
		t.Fatal(err)
	}
	return &elasticFixture{model: &ml.Softmax{InputDim: 4, NumClasses: 3}, data: data, parts: parts}
}

func (f *elasticFixture) masterConfig(k, s, iters int) ElasticConfig {
	return ElasticConfig{
		K: k, S: s,
		Model:           f.model,
		Optimizer:       &ml.SGD{LR: 0.5},
		InitialParams:   f.model.InitParams(nil),
		Iterations:      iters,
		SampleCount:     f.data.N(),
		IterTimeout:     10 * time.Second,
		Alpha:           0.5,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            1,
		LossEvery:       1,
		LossFn: func(p []float64) (float64, error) {
			return ml.MeanLoss(f.model, p, f.data)
		},
	}
}

// spawnElasticWorker runs one elastic worker in a goroutine. perPart returns
// the artificial per-partition compute delay for an iteration — the knob
// that emulates machine speed.
func (f *elasticFixture) spawnElasticWorker(t *testing.T, addr string, wg *sync.WaitGroup, perPart func(iter int) time.Duration) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := DialElasticWorker(addr, ElasticWorkerConfig{
			Model:             f.model,
			PartitionData:     func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
			DelayPerPartition: perPart,
		})
		if err != nil {
			return // master may be gone after a test failure
		}
		_ = w.Run()
	}()
}

func TestElasticConfigValidation(t *testing.T) {
	model := &ml.Softmax{InputDim: 2, NumClasses: 2}
	good := ElasticConfig{
		K: 4, S: 1, Model: model, Optimizer: &ml.SGD{LR: 1},
		InitialParams: model.InitParams(nil), Iterations: 1, SampleCount: 1,
		IterTimeout: time.Second,
	}
	bad := []func(c *ElasticConfig){
		func(c *ElasticConfig) { c.Model = nil },
		func(c *ElasticConfig) { c.K = 0 },
		func(c *ElasticConfig) { c.S = -1 },
		func(c *ElasticConfig) { c.Iterations = 0 },
		func(c *ElasticConfig) { c.IterTimeout = 0 },
		func(c *ElasticConfig) { c.InitialParams = []float64{1} },
		func(c *ElasticConfig) { c.MinWorkers = 1; c.S = 2 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := NewElasticMaster(cfg, "127.0.0.1:0"); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

// TestElasticEndToEndChurn is the acceptance scenario: a live loopback
// cluster where two workers slow ~10x mid-training and another worker
// joins. The control plane must detect the drift, replan, migrate epochs
// atomically, keep converging — and the post-migration iteration times must
// beat a no-replan baseline subjected to the same slowdown.
//
// The scenario is built so load-shedding demonstrably matters: the two
// slowing workers are dialled into slots 0 and 2, which under the uniform
// epoch-0 cyclic allocation (loads [4,4,4,4], k=8) hold identical partition
// sets — so the frozen baseline can never decode without waiting for a slow
// worker, while the adaptive plan starves the slow pair of load.
func TestElasticEndToEndChurn(t *testing.T) {
	const (
		k, s      = 8, 1
		iters     = 36
		slowAt    = 8  // iteration at which slots 0 and 2 slow 10x
		joinAfter = 12 // iteration after which the fifth worker joins
		fastDelay = 2 * time.Millisecond
		slowDelay = 20 * time.Millisecond
	)
	f := newElasticFixture(t, k)

	// run executes one elastic training with 4 initial workers; when
	// adaptive is false the control plane is lobotomised (no drift replans,
	// no joiner), forming the baseline.
	run := func(adaptive bool) *ElasticResult {
		cfg := f.masterConfig(k, s, iters)
		cfg.MinWorkers = 4
		if adaptive {
			cfg.DriftThreshold = 0.5
		} else {
			cfg.DriftThreshold = 1e9
			cfg.CooldownIters = 1 << 30
		}
		master, err := NewElasticMaster(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var iterCount atomic.Int64
		// Dial sequentially so member IDs — and therefore epoch-0 slots —
		// are deterministic: workers 0 and 2 are the ones that slow down.
		for i := 0; i < 4; i++ {
			var perPart func(iter int) time.Duration
			switch {
			case i == 0:
				perPart = func(iter int) time.Duration {
					if int64(iter) > iterCount.Load() {
						iterCount.Store(int64(iter))
					}
					if iter >= slowAt {
						return slowDelay
					}
					return fastDelay
				}
			case i == 2:
				perPart = func(iter int) time.Duration {
					if iter >= slowAt {
						return slowDelay
					}
					return fastDelay
				}
			default:
				perPart = func(int) time.Duration { return fastDelay }
			}
			w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
				Model:             f.model,
				PartitionData:     func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
				DelayPerPartition: perPart,
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run()
			}()
		}
		if adaptive {
			// A fifth worker joins once training is under way.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !waitUntil(10*time.Second, func() bool { return iterCount.Load() >= joinAfter }) {
					return
				}
				w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
					Model:             f.model,
					PartitionData:     func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
					DelayPerPartition: func(int) time.Duration { return fastDelay },
				})
				if err != nil {
					return
				}
				_ = w.Run()
			}()
		}
		if err := master.WaitForWorkers(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		res, runErr := master.Run()
		wg.Wait()
		if runErr != nil {
			t.Fatal(runErr)
		}
		return res
	}

	adaptive := run(true)
	baseline := run(false)

	if len(adaptive.IterTimes) != iters || len(adaptive.Epochs) != iters {
		t.Fatalf("adaptive completed %d iters, %d epochs", len(adaptive.IterTimes), len(adaptive.Epochs))
	}
	// The control plane must have migrated: initial plan plus at least one
	// churn (join) replan, and epochs must be monotonically non-decreasing.
	if len(adaptive.Replans) < 2 {
		t.Fatalf("replans = %+v, want initial + at least one migration", adaptive.Replans)
	}
	sawChurn := false
	for _, ev := range adaptive.Replans[1:] {
		if ev.Reason == "churn" || ev.Reason == "drift" {
			sawChurn = true
		}
	}
	if !sawChurn {
		t.Fatalf("no churn/drift migration in %+v", adaptive.Replans)
	}
	last := adaptive.Epochs[len(adaptive.Epochs)-1]
	if last < 1 {
		t.Fatalf("final epoch = %d, want ≥ 1", last)
	}
	for i := 1; i < len(adaptive.Epochs); i++ {
		if adaptive.Epochs[i] < adaptive.Epochs[i-1] {
			t.Fatalf("epochs regressed: %v", adaptive.Epochs)
		}
	}
	if adaptive.Joins < 5 {
		t.Fatalf("joins = %d, want ≥ 5 (4 initial + joiner)", adaptive.Joins)
	}
	if adaptive.TelemetrySamples == 0 {
		t.Fatal("no telemetry ingested")
	}
	// Convergence: loss must drop.
	first := adaptive.Curve.Points[0].Y
	final := adaptive.Curve.Points[len(adaptive.Curve.Points)-1].Y
	if final >= first*0.8 {
		t.Fatalf("adaptive loss did not drop: %v -> %v", first, final)
	}
	// Post-migration speed: mean of the last 10 iterations, where the
	// adaptive run has shed load from the slow worker and absorbed the
	// joiner, must beat the frozen-plan baseline under the same slowdown.
	tail := func(xs []float64, n int) float64 {
		sum := 0.0
		for _, x := range xs[len(xs)-n:] {
			sum += x
		}
		return sum / float64(n)
	}
	adaptiveTail := tail(adaptive.IterTimes, 10)
	baselineTail := tail(baseline.IterTimes, 10)
	if adaptiveTail >= baselineTail {
		t.Fatalf("post-migration mean %.4fs not better than no-replan baseline %.4fs",
			adaptiveTail, baselineTail)
	}
}

// TestElasticStaleEpochFenced proves migration atomicity: a worker that
// keeps uploading gradients tagged with a superseded epoch — with poisoned
// payloads that would visibly corrupt training if combined — must have every
// such upload rejected before decode, while training converges on the
// honest workers.
func TestElasticStaleEpochFenced(t *testing.T) {
	const (
		k, s  = 4, 1
		iters = 14
	)
	f := newElasticFixture(t, k)
	cfg := f.masterConfig(k, s, iters)
	cfg.MinWorkers = 3
	master, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		f.spawnElasticWorker(t, master.Addr(), &wg, nil)
	}
	// The stale worker behaves honestly during epoch 0, then — after any
	// migration — tags every upload with epoch 0 and a poisoned payload.
	var iterSeen atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := transport.Dial(master.Addr(), 5*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		if err := conn.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: transport.HelloNewWorker}); err != nil {
			return
		}
		ack, err := conn.Recv()
		if err != nil || ack.Type != transport.MsgHello {
			return
		}
		var assign *transport.Assignment
		for {
			env, err := conn.Recv()
			if err != nil || env.Type == transport.MsgShutdown {
				return
			}
			switch env.Type {
			case transport.MsgReassign:
				assign = env.Assign
			case transport.MsgParams:
				if assign == nil {
					continue
				}
				iterSeen.Store(int64(env.Iter))
				out := &transport.Envelope{Type: transport.MsgGradient, Iter: env.Iter, WorkerID: ack.WorkerID}
				if env.Epoch == 0 {
					// Honest epoch-0 participation (compute the real coded
					// gradient so early iterations train correctly).
					vec, gerr := codedGradient(f.model, f.parts, assign, env.Vector)
					if gerr != nil {
						return
					}
					out.Epoch = 0
					out.Vector = vec
				} else {
					// Stale epoch + poison: 1e12 in every coordinate would
					// blow up the parameters if it ever reached combine.
					poison := make([]float64, len(env.Vector))
					for i := range poison {
						poison[i] = 1e12
					}
					out.Epoch = 0 // deliberately stale
					out.Vector = poison
				}
				if err := conn.Send(out); err != nil {
					return
				}
				tel := &transport.Envelope{
					Type: transport.MsgTelemetry, Iter: env.Iter, Epoch: env.Epoch,
					Telemetry: &transport.Telemetry{ComputeSeconds: 0.001, Partitions: len(assign.Partitions)},
				}
				if err := conn.Send(tel); err != nil {
					return
				}
			}
		}
	}()
	// A fourth worker joins mid-run to force a churn migration to epoch 1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iterSeen.Load() < 4 {
			time.Sleep(5 * time.Millisecond)
		}
		w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
			Model:         f.model,
			PartitionData: func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
		})
		if err != nil {
			return
		}
		_ = w.Run()
	}()
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, runErr := master.Run()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.StaleEpochRejected == 0 {
		t.Fatal("no stale-epoch uploads were rejected — the fence never engaged")
	}
	finalEpoch := res.Epochs[len(res.Epochs)-1]
	if finalEpoch < 1 {
		t.Fatalf("final epoch %d — the migration this test depends on never happened", finalEpoch)
	}
	// The poison pills must never have reached combine: parameters stay
	// sane and the loss still drops.
	for _, p := range res.Params {
		if p > 1e6 || p < -1e6 {
			t.Fatalf("poisoned parameter %v — a stale gradient was combined", p)
		}
	}
	first := res.Curve.Points[0].Y
	final := res.Curve.Points[len(res.Curve.Points)-1].Y
	if final >= first {
		t.Fatalf("loss did not drop: %v -> %v", first, final)
	}
}

// codedGradient computes the honest coded gradient for an assignment, with
// the same kernel real workers use.
func codedGradient(model ml.Model, parts []*ml.Dataset, assign *transport.Assignment, params []float64) ([]float64, error) {
	partials := make([]grad.Gradient, len(assign.Partitions))
	for i, p := range assign.Partitions {
		g, err := model.Gradient(params, parts[p])
		if err != nil {
			return nil, err
		}
		partials[i] = g
	}
	coded := make([]float64, len(params))
	if err := grad.EncodeInto(coded, assign.RowCoeffs, partials); err != nil {
		return nil, err
	}
	return coded, nil
}

// waitUntil polls cond every 5ms until it holds or the timeout expires;
// returns whether it held. Keeps churn-scripting goroutines from spinning
// forever when the master exits early.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestElasticSurvivesDeathsAndRejoin kills two of four workers mid-training
// (potentially making the running epoch undecodable mid-iteration), watches
// the master migrate to the survivors, then rejoins one dead worker under
// its old member ID. All workers run at the same artificial speed so the
// plans stay balanced and the pace is uniform.
func TestElasticSurvivesDeathsAndRejoin(t *testing.T) {
	const (
		k, s    = 6, 1
		iters   = 40
		perPart = 2 * time.Millisecond
	)
	f := newElasticFixture(t, k)
	cfg := f.masterConfig(k, s, iters)
	cfg.MinWorkers = 4
	cfg.DriftThreshold = 2.0 // this test is about churn, not drift
	master, err := NewElasticMaster(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var iterCount atomic.Int64
	// Two stable workers; the first also tracks training progress.
	f.spawnElasticWorker(t, master.Addr(), &wg, func(iter int) time.Duration {
		if int64(iter) > iterCount.Load() {
			iterCount.Store(int64(iter))
		}
		return perPart
	})
	f.spawnElasticWorker(t, master.Addr(), &wg, func(int) time.Duration { return perPart })

	// Two workers that die abruptly once training is under way.
	victims := make(chan *ElasticWorker, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
				Model:             f.model,
				PartitionData:     func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
				DelayPerPartition: func(int) time.Duration { return perPart },
			})
			if err != nil {
				return
			}
			victims <- w
			_ = w.Run() // returns when the test closes the conn
		}()
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var rejoinedID, wantRejoinID atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		v1 := <-victims
		v2 := <-victims
		wantRejoinID.Store(int64(v1.ID()))
		if !waitUntil(10*time.Second, func() bool { return iterCount.Load() >= 6 }) {
			return
		}
		_ = v1.Close()
		_ = v2.Close()
		// Give the master time to notice and migrate, then rejoin v1 under
		// its old identity.
		if !waitUntil(10*time.Second, func() bool { return iterCount.Load() >= 14 }) {
			return
		}
		w, err := DialElasticWorker(master.Addr(), ElasticWorkerConfig{
			Model:             f.model,
			PartitionData:     func(p int) (*ml.Dataset, error) { return f.parts[p], nil },
			DelayPerPartition: func(int) time.Duration { return perPart },
			ResumeID:          int(wantRejoinID.Load()),
		})
		if err != nil {
			return
		}
		rejoinedID.Store(int64(w.ID()))
		_ = w.Run()
	}()

	res, runErr := master.Run()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(res.IterTimes) != iters {
		t.Fatalf("completed %d iterations, want %d", len(res.IterTimes), iters)
	}
	if res.Deaths < 2 {
		t.Fatalf("deaths = %d, want ≥ 2", res.Deaths)
	}
	if res.Epochs[len(res.Epochs)-1] < 1 {
		t.Fatalf("epochs = %v — no migration after deaths", res.Epochs)
	}
	if got := rejoinedID.Load(); got == 0 {
		t.Fatal("rejoin never happened")
	} else if want := wantRejoinID.Load(); got != want {
		t.Fatalf("rejoin resumed member %d, want old identity %d", got, want)
	}
	first := res.Curve.Points[0].Y
	final := res.Curve.Points[len(res.Curve.Points)-1].Y
	if final >= first*0.9 {
		t.Fatalf("loss did not drop through churn: %v -> %v", first, final)
	}
}
