package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := NewMatrixFromRows(rows)
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 3.5)
	if got := m.At(1, 0); got != 3.5 {
		t.Fatalf("At = %v, want 3.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestOnes(t *testing.T) {
	m := Ones(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 1 {
				t.Fatalf("Ones[%d][%d] = %v, want 1", i, j, m.At(i, j))
			}
		}
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 || m.At(0, 0) != 0 {
		t.Fatalf("SetRow wrote wrong cells: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestTranspose(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr)
	}
}

func TestMul(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMatrix(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(got, []float64{3, 7}, 1e-12) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestVecMul(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	got, err := a.VecMul([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(got, []float64{4, 6}, 1e-12) {
		t.Fatalf("VecMul = %v", got)
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	rs := m.SelectRows([]int{2, 0})
	if rs.At(0, 0) != 7 || rs.At(1, 2) != 3 {
		t.Fatalf("SelectRows wrong: %v", rs)
	}
	cs := m.SelectCols([]int{1})
	if cs.Rows() != 3 || cs.Cols() != 1 || cs.At(2, 0) != 8 {
		t.Fatalf("SelectCols wrong: %v", cs)
	}
}

func TestMaxAbs(t *testing.T) {
	m := mustMatrix(t, [][]float64{{-5, 2}, {3, 4}})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v, want 5", m.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(1, 2).Equal(NewMatrix(2, 1), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestOnesVec(t *testing.T) {
	if !VecEqual(OnesVec(3), []float64{1, 1, 1}, 0) {
		t.Fatal("OnesVec wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := mustMatrix(t, [][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{1, 3}, 1e-10) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := mustMatrix(t, [][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{3, 2}, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		inv, err := Inverse(a)
		if err != nil {
			continue // singular draw: fine, skip
		}
		prod, err := a.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(n), 1e-7) {
			t.Fatalf("A·A⁻¹ != I for n=%d:\n%v", n, prod)
		}
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		m    [][]float64
		want int
	}{
		{"full 2x2", [][]float64{{1, 2}, {3, 4}}, 2},
		{"rank1 2x2", [][]float64{{1, 2}, {2, 4}}, 1},
		{"zero", [][]float64{{0, 0}, {0, 0}}, 0},
		{"wide", [][]float64{{1, 0, 1}, {0, 1, 1}}, 2},
		{"tall rank2", [][]float64{{1, 0}, {0, 1}, {1, 1}}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := mustMatrix(t, tt.m)
			if got := Rank(m, 0); got != tt.want {
				t.Fatalf("Rank = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSolveLeastSquaresMinNormUnderdetermined(t *testing.T) {
	// x + y = 2 has min-norm solution (1,1).
	a := mustMatrix(t, [][]float64{{1, 1}})
	x, err := SolveLeastSquaresMinNorm(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{1, 1}, 1e-10) {
		t.Fatalf("min-norm = %v, want [1 1]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x through (1,2),(2,4),(3,6.3): slope near 2.05.
	a := mustMatrix(t, [][]float64{{1}, {2}, {3}})
	x, err := SolveLeastSquaresMinNorm(a, []float64{2, 4, 6.3})
	if err != nil {
		t.Fatal(err)
	}
	want := (1*2 + 2*4 + 3*6.3) / (1.0 + 4 + 9)
	if math.Abs(x[0]-want) > 1e-10 {
		t.Fatalf("lsq slope = %v, want %v", x[0], want)
	}
}

func TestSolveConsistentExact(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 1, 0}, {0, 1, 1}})
	x, err := SolveConsistent(a, []float64{3, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	if !VecEqual(ax, []float64{3, 5}, 1e-9) {
		t.Fatalf("residual too big: Ax=%v", ax)
	}
}

func TestSolveConsistentInconsistent(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 1}, {1, 1}})
	if _, err := SolveConsistent(a, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected ErrInconsistent")
	}
}

func TestSolveConsistentRankDeficientButConsistent(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 1}, {2, 2}})
	x, err := SolveConsistent(a, []float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	if !VecEqual(ax, []float64{1, 2}, 1e-9) {
		t.Fatalf("Ax = %v", ax)
	}
}

func TestNullSpaceVector(t *testing.T) {
	// 3x2 matrix: left null space is 1-dimensional.
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}, {1, 1}})
	v, err := NullSpaceVector(a)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(v) < 1e-9 {
		t.Fatal("null vector must be non-zero")
	}
	// vᵀA should be ~0.
	prod, err := a.T().MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(prod) > 1e-9 {
		t.Fatalf("vᵀA = %v, want 0", prod)
	}
}

func TestNullSpaceVectorShapeError(t *testing.T) {
	if _, err := NullSpaceVector(NewMatrix(2, 2)); err == nil {
		t.Fatal("expected shape error for square input")
	}
}

func TestInSpan(t *testing.T) {
	basis := mustMatrix(t, [][]float64{{1, 0, 0}, {0, 1, 0}})
	if !InSpan(basis, []float64{2, 3, 0}, 0) {
		t.Fatal("[2 3 0] should be in span")
	}
	if InSpan(basis, []float64{0, 0, 1}, 0) {
		t.Fatal("[0 0 1] should not be in span")
	}
}

// Property: Solve returns x with A·x = b for random well-conditioned systems.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance: well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		return VecEqual(ax, b, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and preserves Mul compatibility:
// (AB)ᵀ = BᵀAᵀ.
func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randMat(r, n, m)
		b := randMat(r, m, p)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.T()
		right, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		return left.Equal(right, 1e-9) && a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: min-norm solution of a full-row-rank underdetermined system
// satisfies A·x = b exactly.
func TestMinNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(4)
		cols := rows + 1 + r.Intn(4)
		a := randMat(r, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLeastSquaresMinNorm(a, b)
		if err != nil {
			return true // singular Gram (measure-zero); skip
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		return VecEqual(ax, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randMat(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}
