// Package linalg provides the small dense linear-algebra kernel used by the
// gradient-coding constructions and decoders: matrices and vectors over
// float64, LU factorization with partial pivoting, inverses, rank, null
// spaces, minimum-norm least-squares solves and span-membership tests.
//
// The matrices involved in gradient coding are tiny (at most a few hundred
// rows), so the implementation favours clarity and numerical robustness over
// asymptotic tricks. All operations are deterministic.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DefaultTol is the pivot / zero tolerance used by factorizations when the
// caller does not supply one. It is scaled by the magnitude of the matrix
// where appropriate.
const DefaultTol = 1e-10

var (
	// ErrSingular is returned when a factorization or solve encounters a
	// (numerically) singular matrix.
	ErrSingular = errors.New("linalg: singular matrix")
	// ErrShape is returned when operand dimensions are incompatible.
	ErrShape = errors.New("linalg: dimension mismatch")
	// ErrInconsistent is returned when a linear system has no solution.
	ErrInconsistent = errors.New("linalg: inconsistent linear system")
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Ones returns a rows×cols matrix with every entry equal to 1.
func Ones(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for l := 0; l < m.cols; l++ {
			a := m.data[i*m.cols+l]
			if a == 0 {
				continue
			}
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			rowB := other.data[l*other.cols : (l+1)*other.cols]
			for j, b := range rowB {
				rowOut[j] += a * b
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum float64
		for j, a := range row {
			sum += a * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// VecMul returns the vector-matrix product vᵀ·m as a slice of length Cols.
func (m *Matrix) VecMul(v []float64) ([]float64, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("%w: vec(%d) * %dx%d", ErrShape, len(v), m.rows, m.cols)
	}
	out := make([]float64, m.cols)
	for i, a := range v {
		if a == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, b := range row {
			out[j] += a * b
		}
	}
	return out, nil
}

// SelectRows returns a new matrix consisting of the given rows of m, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.cols)
	for r, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("linalg: SelectRows index %d out of range", i))
		}
		copy(out.data[r*out.cols:(r+1)*out.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// SelectCols returns a new matrix consisting of the given columns of m, in order.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := NewMatrix(m.rows, len(idx))
	for c, j := range idx {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("linalg: SelectCols index %d out of range", j))
		}
		for i := 0; i < m.rows; i++ {
			out.data[i*out.cols+c] = m.data[i*m.cols+j]
		}
	}
	return out
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and other have identical shape and entries within tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.FormatFloat(m.At(i, j), 'g', 6, 64))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// OnesVec returns an all-ones vector of length n.
func OnesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// VecEqual reports whether a and b are equal element-wise within tol.
func VecEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
