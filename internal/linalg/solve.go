package linalg

import (
	"fmt"
	"math"
	"sync"
)

// The solvers below run Gaussian elimination directly on raw row-major
// slices borrowed from a sync.Pool, rather than through per-element At/Set
// calls on freshly cloned matrices: the decoders call them on every cache
// miss, so the work matrices are the pipeline's dominant transient
// allocation.

// workPool recycles elimination work buffers. Contents are unspecified;
// borrowers must fully overwrite the region they use.
var workPool = sync.Pool{New: func() any { return new([]float64) }}

// getWork borrows a length-n scratch slice with unspecified contents.
func getWork(n int) []float64 {
	p := workPool.Get().(*[]float64)
	if cap(*p) >= n {
		return (*p)[:n]
	}
	workPool.Put(p)
	return make([]float64, n)
}

// putWork returns a scratch slice to the pool.
func putWork(buf []float64) {
	workPool.Put(&buf)
}

// Solve solves the square linear system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified. Returns ErrSingular when A is
// numerically singular.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: Solve rhs length %d != %d", ErrShape, len(b), a.rows)
	}
	n := a.rows
	work := getWork(n * n)
	defer putWork(work)
	copy(work, a.data)
	x := make([]float64, n)
	copy(x, b)

	tol := pivotTolSlice(work, n, n)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest remaining entry in this column.
		pivot := col
		pmax := math.Abs(work[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(work[r*n+col]); a > pmax {
				pmax, pivot = a, r
			}
		}
		if pmax <= tol {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRowSlices(work, n, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		crow := work[col*n : col*n+n]
		pv := crow[col]
		for r := col + 1; r < n; r++ {
			rrow := work[r*n : r*n+n]
			f := rrow[col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				rrow[c] -= f * crow[c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		irow := work[i*n : i*n+n]
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= irow[j] * x[j]
		}
		x[i] = sum / irow[i]
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Inverse needs square matrix, got %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	inv := NewMatrix(n, n)
	// Solve A·x = e_j for each basis vector. n is tiny in this codebase, so
	// repeated elimination is acceptable and keeps the code simple.
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Rank returns the numerical rank of a, using Gaussian elimination with full
// column scanning and the given tolerance (DefaultTol scaled by magnitude
// when tol <= 0).
func Rank(a *Matrix, tol float64) int {
	rows, cols := a.rows, a.cols
	work := getWork(rows * cols)
	defer putWork(work)
	copy(work, a.data)
	if tol <= 0 {
		tol = pivotTolSlice(work, rows, cols)
	}
	rank := 0
	row := 0
	for col := 0; col < cols && row < rows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < rows; r++ {
			if v := math.Abs(work[r*cols+col]); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRowSlices(work, cols, pivot, row)
		prow := work[row*cols : row*cols+cols]
		pv := prow[col]
		for r := row + 1; r < rows; r++ {
			rrow := work[r*cols : r*cols+cols]
			f := rrow[col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				rrow[c] -= f * prow[c]
			}
		}
		row++
		rank++
	}
	return rank
}

// SolveLeastSquaresMinNorm returns the minimum-norm x minimising ‖A·x − b‖₂.
// For full-row-rank A (rows ≤ cols) this is the exact minimum-norm solution
// x = Aᵀ(AAᵀ)⁻¹b. For overdetermined systems it returns the least-squares
// solution via the normal equations. Returns ErrSingular when the relevant
// Gram matrix is singular (rank-deficient A).
func SolveLeastSquaresMinNorm(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: rhs length %d != rows %d", ErrShape, len(b), a.rows)
	}
	if a.rows <= a.cols {
		// Underdetermined/square: x = Aᵀ·y with (A·Aᵀ)·y = b.
		at := a.T()
		gram, err := a.Mul(at)
		if err != nil {
			return nil, err
		}
		y, err := Solve(gram, b)
		if err != nil {
			return nil, err
		}
		return at.MulVec(y)
	}
	// Overdetermined: (AᵀA)·x = Aᵀ·b.
	at := a.T()
	gram, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	rhs, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return Solve(gram, rhs)
}

// SolveConsistent finds any x with A·x = b for a possibly non-square,
// possibly rank-deficient A, by Gaussian elimination with partial pivoting
// and free variables pinned to zero. Returns ErrInconsistent when no exact
// solution exists (residual above tol).
func SolveConsistent(a *Matrix, b []float64, tol float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: rhs length %d != rows %d", ErrShape, len(b), a.rows)
	}
	rows, cols := a.rows, a.cols
	// One borrow covers the work matrix and the mutable rhs.
	scratch := getWork(rows*cols + rows)
	defer putWork(scratch)
	work := scratch[:rows*cols]
	rhs := scratch[rows*cols:]
	copy(work, a.data)
	copy(rhs, b)
	if tol <= 0 {
		tol = pivotTolSlice(work, rows, cols)
		if bt := Norm2(b) * DefaultTol; bt > tol {
			tol = bt
		}
	}
	// pivotRows[i] is the pivot column of elimination row i.
	pivotCols := make([]int, 0, minInt(rows, cols))
	row := 0
	for col := 0; col < cols && row < rows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < rows; r++ {
			if v := math.Abs(work[r*cols+col]); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRowSlices(work, cols, pivot, row)
		rhs[pivot], rhs[row] = rhs[row], rhs[pivot]
		prow := work[row*cols : row*cols+cols]
		pv := prow[col]
		for r := row + 1; r < rows; r++ {
			rrow := work[r*cols : r*cols+cols]
			f := rrow[col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				rrow[c] -= f * prow[c]
			}
			rhs[r] -= f * rhs[row]
		}
		pivotCols = append(pivotCols, col)
		row++
	}
	// Consistency: rows below the last pivot must have ~zero rhs.
	resTol := residualTol(a, b, tol)
	for r := row; r < rows; r++ {
		if math.Abs(rhs[r]) > resTol {
			return nil, ErrInconsistent
		}
	}
	// Back substitution over pivot columns; free variables stay zero.
	x := make([]float64, cols)
	for i := len(pivotCols) - 1; i >= 0; i-- {
		pc := pivotCols[i]
		irow := work[i*cols : i*cols+cols]
		sum := rhs[i]
		for c := pc + 1; c < cols; c++ {
			sum -= irow[c] * x[c]
		}
		x[pc] = sum / irow[pc]
	}
	// Validate: elimination tolerances can mask inconsistency on badly
	// conditioned systems, so check the actual residual.
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > resTol {
			return nil, ErrInconsistent
		}
	}
	return x, nil
}

// NullSpaceVector returns a non-zero vector v with vᵀ·A = 0 for a matrix A
// with more rows than columns (the typical decoding case: A is
// (s+1)×s). Returns ErrSingular when the left null space is empty at the
// working tolerance.
func NullSpaceVector(a *Matrix) ([]float64, error) {
	if a.rows <= a.cols {
		return nil, fmt.Errorf("%w: NullSpaceVector needs rows > cols, got %dx%d", ErrShape, a.rows, a.cols)
	}
	// vᵀA = 0  ⇔  Aᵀv = 0. Row-reduce Aᵀ (cols×rows) and read a null basis
	// vector from a free column. The transpose is materialised straight into
	// a pooled buffer.
	wrows, n := a.cols, a.rows // work is wrows×n; n is the length of v
	work := getWork(wrows * n)
	defer putWork(work)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range arow {
			work[j*n+i] = v
		}
	}
	tol := pivotTolSlice(work, wrows, n)
	pivotColOfRow := make([]int, 0, wrows)
	isPivotCol := make([]bool, n)
	row := 0
	for col := 0; col < n && row < wrows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < wrows; r++ {
			if v := math.Abs(work[r*n+col]); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRowSlices(work, n, pivot, row)
		prow := work[row*n : row*n+n]
		pv := prow[col]
		// Normalise pivot row and eliminate in both directions (Gauss-Jordan)
		// so back substitution is trivial.
		for c := col; c < n; c++ {
			prow[c] /= pv
		}
		for r := 0; r < wrows; r++ {
			if r == row {
				continue
			}
			rrow := work[r*n : r*n+n]
			f := rrow[col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				rrow[c] -= f * prow[c]
			}
		}
		pivotColOfRow = append(pivotColOfRow, col)
		isPivotCol[col] = true
		row++
	}
	// Pick the first free column and build the corresponding null vector.
	free := -1
	for c := 0; c < n; c++ {
		if !isPivotCol[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, ErrSingular
	}
	v := make([]float64, n)
	v[free] = 1
	for r, pc := range pivotColOfRow {
		v[pc] = -work[r*n+free]
	}
	return v, nil
}

// InSpan reports whether target lies in the row span of basisRows, i.e.
// whether some x satisfies xᵀ·basisRows = targetᵀ.
func InSpan(basisRows *Matrix, target []float64, tol float64) bool {
	_, err := SolveConsistent(basisRows.T(), target, tol)
	return err == nil
}

// swapRowSlices swaps rows i and j of a row-major buffer with the given
// stride.
func swapRowSlices(data []float64, stride, i, j int) {
	if i == j {
		return
	}
	ri := data[i*stride : i*stride+stride]
	rj := data[j*stride : j*stride+stride]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// pivotTolSlice mirrors pivotTol for a raw row-major buffer.
func pivotTolSlice(data []float64, rows, cols int) float64 {
	var scale float64
	for _, v := range data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return DefaultTol
	}
	return DefaultTol * scale * float64(maxInt(rows, cols))
}

func residualTol(a *Matrix, b []float64, tol float64) float64 {
	// Residual comparisons operate on combined magnitudes of A and b.
	rt := tol * 1e3
	if bt := (1 + Norm2(b)) * 1e-7; bt > rt {
		rt = bt
	}
	return rt
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
