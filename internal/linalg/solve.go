package linalg

import (
	"fmt"
	"math"
)

// Solve solves the square linear system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified. Returns ErrSingular when A is
// numerically singular.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: Solve rhs length %d != %d", ErrShape, len(b), a.rows)
	}
	n := a.rows
	// Augmented working copy.
	work := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	tol := pivotTol(work)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest remaining entry in this column.
		pivot := col
		pmax := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(work.At(r, col)); a > pmax {
				pmax, pivot = a, r
			}
		}
		if pmax <= tol {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		pv := work.At(col, col)
		for r := col + 1; r < n; r++ {
			f := work.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= work.At(i, j) * x[j]
		}
		x[i] = sum / work.At(i, i)
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Inverse needs square matrix, got %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	inv := NewMatrix(n, n)
	// Solve A·x = e_j for each basis vector. n is tiny in this codebase, so
	// repeated elimination is acceptable and keeps the code simple.
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Rank returns the numerical rank of a, using Gaussian elimination with full
// column scanning and the given tolerance (DefaultTol scaled by magnitude
// when tol <= 0).
func Rank(a *Matrix, tol float64) int {
	work := a.Clone()
	if tol <= 0 {
		tol = pivotTol(work)
	}
	rank := 0
	row := 0
	for col := 0; col < work.cols && row < work.rows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < work.rows; r++ {
			if v := math.Abs(work.At(r, col)); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(work, pivot, row)
		pv := work.At(row, col)
		for r := row + 1; r < work.rows; r++ {
			f := work.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < work.cols; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(row, c))
			}
		}
		row++
		rank++
	}
	return rank
}

// SolveLeastSquaresMinNorm returns the minimum-norm x minimising ‖A·x − b‖₂.
// For full-row-rank A (rows ≤ cols) this is the exact minimum-norm solution
// x = Aᵀ(AAᵀ)⁻¹b. For overdetermined systems it returns the least-squares
// solution via the normal equations. Returns ErrSingular when the relevant
// Gram matrix is singular (rank-deficient A).
func SolveLeastSquaresMinNorm(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: rhs length %d != rows %d", ErrShape, len(b), a.rows)
	}
	if a.rows <= a.cols {
		// Underdetermined/square: x = Aᵀ·y with (A·Aᵀ)·y = b.
		at := a.T()
		gram, err := a.Mul(at)
		if err != nil {
			return nil, err
		}
		y, err := Solve(gram, b)
		if err != nil {
			return nil, err
		}
		return at.MulVec(y)
	}
	// Overdetermined: (AᵀA)·x = Aᵀ·b.
	at := a.T()
	gram, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	rhs, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return Solve(gram, rhs)
}

// SolveConsistent finds any x with A·x = b for a possibly non-square,
// possibly rank-deficient A, by Gaussian elimination with partial pivoting
// and free variables pinned to zero. Returns ErrInconsistent when no exact
// solution exists (residual above tol).
func SolveConsistent(a *Matrix, b []float64, tol float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: rhs length %d != rows %d", ErrShape, len(b), a.rows)
	}
	work := a.Clone()
	rhs := make([]float64, len(b))
	copy(rhs, b)
	if tol <= 0 {
		tol = pivotTol(work)
		if bt := Norm2(b) * DefaultTol; bt > tol {
			tol = bt
		}
	}
	type pivotPos struct{ row, col int }
	var pivots []pivotPos
	row := 0
	for col := 0; col < work.cols && row < work.rows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < work.rows; r++ {
			if v := math.Abs(work.At(r, col)); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(work, pivot, row)
		rhs[pivot], rhs[row] = rhs[row], rhs[pivot]
		pv := work.At(row, col)
		for r := row + 1; r < work.rows; r++ {
			f := work.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < work.cols; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(row, c))
			}
			rhs[r] -= f * rhs[row]
		}
		pivots = append(pivots, pivotPos{row, col})
		row++
	}
	// Consistency: rows below the last pivot must have ~zero rhs.
	resTol := residualTol(a, b, tol)
	for r := row; r < work.rows; r++ {
		if math.Abs(rhs[r]) > resTol {
			return nil, ErrInconsistent
		}
	}
	// Back substitution over pivot columns; free variables stay zero.
	x := make([]float64, work.cols)
	for i := len(pivots) - 1; i >= 0; i-- {
		p := pivots[i]
		sum := rhs[p.row]
		for c := p.col + 1; c < work.cols; c++ {
			sum -= work.At(p.row, c) * x[c]
		}
		x[p.col] = sum / work.At(p.row, p.col)
	}
	// Validate: elimination tolerances can mask inconsistency on badly
	// conditioned systems, so check the actual residual.
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > resTol {
			return nil, ErrInconsistent
		}
	}
	return x, nil
}

// NullSpaceVector returns a non-zero vector v with vᵀ·A = 0 for a matrix A
// with more rows than columns (the typical decoding case: A is
// (s+1)×s). Returns ErrSingular when the left null space is empty at the
// working tolerance.
func NullSpaceVector(a *Matrix) ([]float64, error) {
	if a.rows <= a.cols {
		return nil, fmt.Errorf("%w: NullSpaceVector needs rows > cols, got %dx%d", ErrShape, a.rows, a.cols)
	}
	// vᵀA = 0  ⇔  Aᵀv = 0. Row-reduce Aᵀ (cols×rows) and read a null basis
	// vector from a free column.
	at := a.T()
	work := at.Clone()
	tol := pivotTol(work)
	n := work.cols // length of v
	pivotColOfRow := make([]int, 0, work.rows)
	isPivotCol := make([]bool, n)
	row := 0
	for col := 0; col < n && row < work.rows; col++ {
		pivot := -1
		pmax := tol
		for r := row; r < work.rows; r++ {
			if v := math.Abs(work.At(r, col)); v > pmax {
				pmax, pivot = v, r
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(work, pivot, row)
		pv := work.At(row, col)
		// Normalise pivot row and eliminate in both directions (Gauss-Jordan)
		// so back substitution is trivial.
		for c := col; c < n; c++ {
			work.Set(row, c, work.At(row, c)/pv)
		}
		for r := 0; r < work.rows; r++ {
			if r == row {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(row, c))
			}
		}
		pivotColOfRow = append(pivotColOfRow, col)
		isPivotCol[col] = true
		row++
	}
	// Pick the first free column and build the corresponding null vector.
	free := -1
	for c := 0; c < n; c++ {
		if !isPivotCol[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, ErrSingular
	}
	v := make([]float64, n)
	v[free] = 1
	for r, pc := range pivotColOfRow {
		v[pc] = -work.At(r, free)
	}
	return v, nil
}

// InSpan reports whether target lies in the row span of basisRows, i.e.
// whether some x satisfies xᵀ·basisRows = targetᵀ.
func InSpan(basisRows *Matrix, target []float64, tol float64) bool {
	_, err := SolveConsistent(basisRows.T(), target, tol)
	return err == nil
}

func swapRows(m *Matrix, i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

func pivotTol(m *Matrix) float64 {
	scale := m.MaxAbs()
	if scale == 0 {
		return DefaultTol
	}
	return DefaultTol * scale * float64(maxInt(m.rows, m.cols))
}

func residualTol(a *Matrix, b []float64, tol float64) float64 {
	// Residual comparisons operate on combined magnitudes of A and b.
	rt := tol * 1e3
	if bt := (1 + Norm2(b)) * 1e-7; bt > rt {
		rt = bt
	}
	return rt
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
