package partition

import "testing"

// FuzzProportionalLoads checks the allocator's invariants on arbitrary
// inputs: whenever it succeeds, the loads sum to k(s+1), respect 0 ≤ n ≤ k,
// and the cyclic placement validates.
func FuzzProportionalLoads(f *testing.F) {
	f.Add(uint8(5), uint8(7), uint8(1), uint16(12345))
	f.Add(uint8(3), uint8(3), uint8(2), uint16(1))
	f.Add(uint8(10), uint8(40), uint8(3), uint16(9999))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, sRaw uint8, mix uint16) {
		m := int(mRaw%16) + 1
		k := int(kRaw%64) + 1
		s := int(sRaw % 4)
		c := make([]float64, m)
		x := uint32(mix) + 1
		for i := range c {
			x = x*1664525 + 1013904223 // LCG: deterministic pseudo-speeds
			c[i] = float64(x%97)/10 + 0.1
		}
		loads, err := ProportionalLoads(c, k, s)
		if err != nil {
			return // invalid shapes are allowed to fail
		}
		total := 0
		for i, n := range loads {
			if n < 0 || n > k {
				t.Fatalf("load[%d]=%d outside [0,%d] (c=%v k=%d s=%d)", i, n, k, c, k, s)
			}
			total += n
		}
		if total != k*(s+1) {
			t.Fatalf("Σloads=%d != k(s+1)=%d", total, k*(s+1))
		}
		alloc, err := CyclicFromLoads(loads, k, s)
		if err != nil {
			t.Fatalf("cyclic placement failed on valid loads: %v", err)
		}
		if err := alloc.Validate(); err != nil {
			t.Fatalf("allocation invalid: %v", err)
		}
	})
}
