package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProportionalLoadsPaperExample(t *testing.T) {
	// Example 1 of the paper: c = [1 2 3 4 4], s = 1, k = 7.
	// Total copies = 14, Σc = 14, so n = c exactly.
	loads, err := ProportionalLoads([]float64{1, 2, 3, 4, 4}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 4}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
}

func TestProportionalPaperExampleSupport(t *testing.T) {
	alloc, err := Proportional([]float64{1, 2, 3, 4, 4}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 6 cyclic placement reproduces the support of Example 1:
	// W1:{0} W2:{1,2} W3:{3,4,5} W4:{6,0,1,2} W5:{3,4,5,6}.
	want := [][]int{{0}, {1, 2}, {3, 4, 5}, {6, 0, 1, 2}, {3, 4, 5, 6}}
	for i, parts := range want {
		if len(alloc.Parts[i]) != len(parts) {
			t.Fatalf("worker %d parts = %v, want %v", i, alloc.Parts[i], parts)
		}
		for j := range parts {
			if alloc.Parts[i][j] != parts[j] {
				t.Fatalf("worker %d parts = %v, want %v", i, alloc.Parts[i], parts)
			}
		}
	}
	if err := alloc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestProportionalLoadsRounding(t *testing.T) {
	// Non-integral ideals: c = [1 1 1], k = 4, s = 1 → total 8, ideal 8/3 each.
	loads, err := ProportionalLoads([]float64{1, 1, 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range loads {
		sum += n
		if n > 4 {
			t.Fatalf("load %d exceeds k", n)
		}
	}
	if sum != 8 {
		t.Fatalf("Σloads = %d, want 8", sum)
	}
}

func TestProportionalLoadsZeroThroughputWorker(t *testing.T) {
	loads, err := ProportionalLoads([]float64{0, 1, 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0] != 0 {
		t.Fatalf("zero-throughput worker got load %d", loads[0])
	}
}

func TestProportionalLoadsErrors(t *testing.T) {
	cases := []struct {
		name string
		c    []float64
		k, s int
		want error
	}{
		{"empty", nil, 4, 1, ErrBadInput},
		{"zero k", []float64{1}, 0, 0, ErrBadInput},
		{"negative s", []float64{1}, 4, -1, ErrBadInput},
		{"negative c", []float64{-1, 1}, 4, 0, ErrBadInput},
		{"all zero c", []float64{0, 0}, 4, 0, ErrBadInput},
		{"s too large", []float64{1, 1}, 4, 2, ErrInfeasible},
		{"not enough positive", []float64{1, 0, 0}, 4, 1, ErrInfeasible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ProportionalLoads(tc.c, tc.k, tc.s)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestProportionalLoadsCapInfeasible(t *testing.T) {
	// One worker dominates: with cap n_i ≤ k the spill must fit elsewhere.
	// c = [100, 1], k = 3, s = 1 → total 6, cap 3 each → feasible exactly.
	loads, err := ProportionalLoads([]float64{100, 1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0] != 3 || loads[1] != 3 {
		t.Fatalf("loads = %v, want [3 3]", loads)
	}
}

func TestCyclicFromLoadsBadSum(t *testing.T) {
	if _, err := CyclicFromLoads([]int{1, 1}, 3, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestUniform(t *testing.T) {
	alloc, err := Uniform(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Worker 3 should hold {3,4,0}.
	want := []int{3, 4, 0}
	for j, p := range want {
		if alloc.Parts[3][j] != p {
			t.Fatalf("worker 3 parts = %v, want %v", alloc.Parts[3], want)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(3, 3); err == nil {
		t.Fatal("expected error for s >= m")
	}
	if _, err := Uniform(0, 0); err == nil {
		t.Fatal("expected error for m = 0")
	}
}

func TestNaive(t *testing.T) {
	alloc, err := Naive(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if len(alloc.Parts[i]) != 1 || alloc.Parts[i][0] != i {
			t.Fatalf("naive parts[%d] = %v", i, alloc.Parts[i])
		}
	}
}

func TestFractionalRepetition(t *testing.T) {
	alloc, err := FractionalRepetition(6, 2) // 3 groups of 2 workers
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Groups of workersPerGroup=2 each cover all 6 partitions disjointly.
	for g := 0; g < 3; g++ {
		covered := make(map[int]int)
		for j := 0; j < 2; j++ {
			for _, p := range alloc.Parts[g*2+j] {
				covered[p]++
			}
		}
		if len(covered) != 6 {
			t.Fatalf("group %d covers %d partitions, want 6", g, len(covered))
		}
		for p, c := range covered {
			if c != 1 {
				t.Fatalf("group %d covers partition %d %d times", g, p, c)
			}
		}
	}
}

func TestFractionalRepetitionIndivisible(t *testing.T) {
	if _, err := FractionalRepetition(5, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestHolders(t *testing.T) {
	alloc, err := Proportional([]float64{1, 2, 3, 4, 4}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	holders := alloc.Holders()
	for p, h := range holders {
		if len(h) != 2 {
			t.Fatalf("partition %d held by %v, want 2 workers", p, h)
		}
	}
	// Partition 0 held by W1 and W4 (indices 0 and 3).
	if holders[0][0] != 0 || holders[0][1] != 3 {
		t.Fatalf("holders[0] = %v, want [0 3]", holders[0])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	alloc, err := Proportional([]float64{1, 1, 1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc.Parts[0][0] = alloc.Parts[0][len(alloc.Parts[0])-1] // duplicate within worker (if load>1) or replication skew
	if err := alloc.Validate(); err == nil && len(alloc.Parts[0]) > 1 {
		t.Fatal("Validate should catch duplicates")
	}
}

// Property: for random throughputs, Proportional yields a valid allocation
// whose loads are monotone in throughput (up to rounding by one).
func TestProportionalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 3 + r.Intn(20)
		s := r.Intn(3)
		if s+1 > m {
			s = m - 1
		}
		k := m + r.Intn(50)
		c := make([]float64, m)
		for i := range c {
			c[i] = 0.5 + r.Float64()*7
		}
		alloc, err := Proportional(c, k, s)
		if err != nil {
			return false
		}
		if err := alloc.Validate(); err != nil {
			return false
		}
		// Loads roughly proportional: worker with 2x throughput never gets
		// fewer copies minus slack of 2 (rounding + cap effects).
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if c[i] >= 2*c[j] && alloc.Loads[i]+2 < alloc.Loads[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: cyclic placement puts consecutive partition indices on each
// worker (arc structure used by the group finder).
func TestCyclicArcProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 3 + r.Intn(10)
		s := r.Intn(2)
		k := m + r.Intn(20)
		c := make([]float64, m)
		for i := range c {
			c[i] = 1 + r.Float64()*4
		}
		alloc, err := Proportional(c, k, s)
		if err != nil {
			return false
		}
		for _, parts := range alloc.Parts {
			for j := 1; j < len(parts); j++ {
				if parts[j] != (parts[j-1]+1)%alloc.K {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
