// Package partition implements the heterogeneity-aware data-partition
// allocation of the paper (§IV.A): given per-worker throughputs c_i and a
// straggler budget s, each of the k partitions is replicated s+1 times and
// the k(s+1) copies are distributed so that worker i receives
// n_i ≈ k(s+1)·c_i/Σc_j copies, placed cyclically (Eq. 6) so that every
// partition lands on exactly s+1 distinct workers.
package partition

import (
	"errors"
	"fmt"
	"sort"
)

var (
	// ErrBadInput is returned for non-positive k, negative s, or empty/invalid
	// throughput vectors.
	ErrBadInput = errors.New("partition: invalid input")
	// ErrInfeasible is returned when no allocation with n_i ≤ k per worker and
	// Σn_i = k(s+1) exists (i.e. s+1 > m).
	ErrInfeasible = errors.New("partition: infeasible allocation")
)

// Allocation describes which data partitions each worker holds.
type Allocation struct {
	// K is the number of data partitions.
	K int
	// S is the straggler budget: each partition has S+1 copies.
	S int
	// Loads[i] is n_i, the number of partition copies at worker i.
	Loads []int
	// Parts[i] lists the partition indices held by worker i, in placement
	// order.
	Parts [][]int
}

// M returns the number of workers.
func (a *Allocation) M() int { return len(a.Loads) }

// Holders returns, for each partition, the sorted list of workers holding it.
func (a *Allocation) Holders() [][]int {
	holders := make([][]int, a.K)
	for w, parts := range a.Parts {
		for _, p := range parts {
			holders[p] = append(holders[p], w)
		}
	}
	for _, h := range holders {
		sort.Ints(h)
	}
	return holders
}

// Validate checks the structural invariants: Σn_i = k(s+1), n_i ≤ k, every
// partition on exactly s+1 distinct workers, no duplicate partition within a
// worker.
func (a *Allocation) Validate() error {
	if a.K <= 0 {
		return fmt.Errorf("%w: k=%d", ErrBadInput, a.K)
	}
	total := 0
	for i, n := range a.Loads {
		if n < 0 || n > a.K {
			return fmt.Errorf("%w: worker %d load %d outside [0,%d]", ErrBadInput, i, n, a.K)
		}
		if n != len(a.Parts[i]) {
			return fmt.Errorf("%w: worker %d load %d != |parts| %d", ErrBadInput, i, n, len(a.Parts[i]))
		}
		seen := make(map[int]bool, n)
		for _, p := range a.Parts[i] {
			if p < 0 || p >= a.K {
				return fmt.Errorf("%w: worker %d holds invalid partition %d", ErrBadInput, i, p)
			}
			if seen[p] {
				return fmt.Errorf("%w: worker %d holds partition %d twice", ErrBadInput, i, p)
			}
			seen[p] = true
		}
		total += n
	}
	if total != a.K*(a.S+1) {
		return fmt.Errorf("%w: total copies %d != k(s+1)=%d", ErrBadInput, total, a.K*(a.S+1))
	}
	counts := make([]int, a.K)
	for _, parts := range a.Parts {
		for _, p := range parts {
			counts[p]++
		}
	}
	for p, c := range counts {
		if c != a.S+1 {
			return fmt.Errorf("%w: partition %d replicated %d times, want %d", ErrBadInput, p, c, a.S+1)
		}
	}
	return nil
}

// ProportionalLoads computes the per-worker copy counts n_i from throughputs,
// targeting n_i ∝ c_i with Σ n_i = k(s+1) and 0 ≤ n_i ≤ k (Eq. 5 with
// largest-remainder rounding; the paper assumes the ideal values are
// integral, we handle the general case). Workers with c_i = 0 receive no
// load.
func ProportionalLoads(throughputs []float64, k, s int) ([]int, error) {
	m := len(throughputs)
	if m == 0 || k <= 0 || s < 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d s=%d", ErrBadInput, m, k, s)
	}
	if s+1 > m {
		return nil, fmt.Errorf("%w: need s+1=%d ≤ m=%d workers per partition", ErrInfeasible, s+1, m)
	}
	var sum float64
	for i, c := range throughputs {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative throughput c[%d]=%v", ErrBadInput, i, c)
		}
		sum += c
	}
	if sum == 0 {
		return nil, fmt.Errorf("%w: all throughputs zero", ErrBadInput)
	}
	positive := 0
	for _, c := range throughputs {
		if c > 0 {
			positive++
		}
	}
	if s+1 > positive {
		return nil, fmt.Errorf("%w: only %d workers with positive throughput, need ≥ s+1=%d", ErrInfeasible, positive, s+1)
	}

	total := k * (s + 1)
	loads := make([]int, m)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, m)
	assigned := 0
	for i, c := range throughputs {
		ideal := float64(total) * c / sum
		fl := int(ideal)
		if fl > k {
			fl = k
		}
		loads[i] = fl
		assigned += fl
		frac := ideal - float64(fl)
		if c > 0 {
			rems = append(rems, rem{i, frac})
		}
	}
	// Distribute the remaining copies by largest fractional part, respecting
	// the n_i ≤ k cap. Ties break by index for determinism.
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	deficit := total - assigned
	for deficit > 0 {
		progressed := false
		for _, r := range rems {
			if deficit == 0 {
				break
			}
			if loads[r.idx] < k {
				loads[r.idx]++
				deficit--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: cannot place %d copies with n_i ≤ k", ErrInfeasible, deficit)
		}
	}
	return loads, nil
}

// CyclicFromLoads places the copies cyclically (Eq. 6): worker i receives
// partitions (n'_i+1 … n'_i+n_i) mod k where n'_i = Σ_{j<i} n_j. Because
// Σn_i = k(s+1), each partition ends up on exactly s+1 workers provided
// n_i ≤ k for all i.
func CyclicFromLoads(loads []int, k, s int) (*Allocation, error) {
	total := 0
	for i, n := range loads {
		if n < 0 || n > k {
			return nil, fmt.Errorf("%w: load[%d]=%d outside [0,%d]", ErrBadInput, i, n, k)
		}
		total += n
	}
	if total != k*(s+1) {
		return nil, fmt.Errorf("%w: Σloads=%d != k(s+1)=%d", ErrBadInput, total, k*(s+1))
	}
	alloc := &Allocation{
		K:     k,
		S:     s,
		Loads: append([]int(nil), loads...),
		Parts: make([][]int, len(loads)),
	}
	offset := 0
	for i, n := range loads {
		parts := make([]int, 0, n)
		for j := 0; j < n; j++ {
			parts = append(parts, (offset+j)%k)
		}
		alloc.Parts[i] = parts
		offset += n
	}
	if err := alloc.Validate(); err != nil {
		return nil, fmt.Errorf("cyclic placement produced invalid allocation: %w", err)
	}
	return alloc, nil
}

// Proportional builds the full heterogeneity-aware allocation: proportional
// loads followed by cyclic placement.
func Proportional(throughputs []float64, k, s int) (*Allocation, error) {
	loads, err := ProportionalLoads(throughputs, k, s)
	if err != nil {
		return nil, err
	}
	return CyclicFromLoads(loads, k, s)
}

// Uniform builds the classic homogeneous cyclic-code allocation of Tandon et
// al.: k = m partitions, worker i holds partitions {i, i+1, …, i+s} mod m.
func Uniform(m, s int) (*Allocation, error) {
	if m <= 0 || s < 0 || s >= m {
		return nil, fmt.Errorf("%w: m=%d s=%d", ErrBadInput, m, s)
	}
	alloc := &Allocation{K: m, S: s, Loads: make([]int, m), Parts: make([][]int, m)}
	for i := 0; i < m; i++ {
		parts := make([]int, 0, s+1)
		for j := 0; j <= s; j++ {
			parts = append(parts, (i+j)%m)
		}
		alloc.Loads[i] = s + 1
		alloc.Parts[i] = parts
	}
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	return alloc, nil
}

// Naive builds the uncoded allocation: k = m partitions, one per worker,
// tolerating zero stragglers.
func Naive(m int) (*Allocation, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: m=%d", ErrBadInput, m)
	}
	alloc := &Allocation{K: m, S: 0, Loads: make([]int, m), Parts: make([][]int, m)}
	for i := 0; i < m; i++ {
		alloc.Loads[i] = 1
		alloc.Parts[i] = []int{i}
	}
	return alloc, nil
}

// FractionalRepetition builds Tandon et al.'s fractional-repetition
// allocation: requires (s+1) | m; the workers are split into s+1 replication
// groups, each group partitions the k=m data partitions disjointly,
// m/(s+1) consecutive partitions per worker.
func FractionalRepetition(m, s int) (*Allocation, error) {
	if m <= 0 || s < 0 || s >= m {
		return nil, fmt.Errorf("%w: m=%d s=%d", ErrBadInput, m, s)
	}
	if m%(s+1) != 0 {
		return nil, fmt.Errorf("%w: fractional repetition needs (s+1)|m, got m=%d s=%d", ErrInfeasible, m, s)
	}
	alloc := &Allocation{K: m, S: s, Loads: make([]int, m), Parts: make([][]int, m)}
	groups := s + 1
	workersPerGroup := m / groups
	partsPerWorker := m / workersPerGroup // = s+1 consecutive partitions each
	w := 0
	for g := 0; g < groups; g++ {
		for j := 0; j < workersPerGroup; j++ {
			parts := make([]int, 0, partsPerWorker)
			start := j * partsPerWorker
			for p := 0; p < partsPerWorker; p++ {
				parts = append(parts, (start+p)%m)
			}
			alloc.Loads[w] = partsPerWorker
			alloc.Parts[w] = parts
			w++
		}
	}
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	return alloc, nil
}
