// Package estimate provides worker-throughput estimators. The paper's
// heter-aware scheme assumes c_i "can be estimated by sampling" (§III.C);
// this package implements that sampling estimator plus an EWMA variant, and
// exposes controlled mis-estimation used by the ablation experiments that
// motivate the group-based scheme (§V: "c_i in practical system is hard to
// be measured exactly").
package estimate

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrNoSamples is returned when an estimate is requested before any
// observation.
var ErrNoSamples = errors.New("estimate: no samples")

// Sampler estimates throughput as the mean of observed rates
// (partitions processed / elapsed seconds).
type Sampler struct {
	sum   float64
	count int
}

// Observe records one measurement of work completed in elapsed seconds.
func (s *Sampler) Observe(partitions int, elapsed float64) error {
	if partitions <= 0 || elapsed <= 0 {
		return fmt.Errorf("estimate: invalid observation partitions=%d elapsed=%v", partitions, elapsed)
	}
	s.sum += float64(partitions) / elapsed
	s.count++
	return nil
}

// Estimate returns the mean observed rate.
func (s *Sampler) Estimate() (float64, error) {
	if s.count == 0 {
		return 0, ErrNoSamples
	}
	return s.sum / float64(s.count), nil
}

// Count returns the number of observations.
func (s *Sampler) Count() int { return s.count }

// EWMA estimates throughput with exponential smoothing, adapting to slow
// drift in machine speed.
type EWMA struct {
	// Alpha is the smoothing factor in (0,1]; higher reacts faster.
	Alpha float64

	value float64
	init  bool
}

// Observe records one rate measurement.
func (e *EWMA) Observe(partitions int, elapsed float64) error {
	if partitions <= 0 || elapsed <= 0 {
		return fmt.Errorf("estimate: invalid observation partitions=%d elapsed=%v", partitions, elapsed)
	}
	if e.Alpha <= 0 || e.Alpha > 1 {
		return fmt.Errorf("estimate: alpha %v outside (0,1]", e.Alpha)
	}
	rate := float64(partitions) / elapsed
	if !e.init {
		e.value = rate
		e.init = true
		return nil
	}
	e.value = e.Alpha*rate + (1-e.Alpha)*e.value
	return nil
}

// Estimate returns the smoothed rate.
func (e *EWMA) Estimate() (float64, error) {
	if !e.init {
		return 0, ErrNoSamples
	}
	return e.value, nil
}

// Meter is the online estimator used by the elastic control plane: an EWMA
// gated on a minimum observation count, so that cold or freshly-(re)joined
// workers fall back to a prior guess until they have reported enough
// iterations of telemetry.
type Meter struct {
	ewma  EWMA
	prior float64
	count int
}

// NewMeter builds a meter with the given smoothing factor and prior rate
// guess (used until the meter is Ready).
func NewMeter(alpha, prior float64) *Meter {
	return &Meter{ewma: EWMA{Alpha: alpha}, prior: prior}
}

// Observe records one rate measurement (partitions processed in elapsed
// seconds).
func (m *Meter) Observe(partitions int, elapsed float64) error {
	if err := m.ewma.Observe(partitions, elapsed); err != nil {
		return err
	}
	m.count++
	return nil
}

// Count returns the number of observations recorded.
func (m *Meter) Count() int { return m.count }

// Ready reports whether at least min observations have been recorded.
func (m *Meter) Ready(min int) bool { return m.count >= min }

// Rate returns the smoothed rate once Ready(min), the prior guess before.
func (m *Meter) Rate(min int) float64 {
	if m.count >= min {
		if v, err := m.ewma.Estimate(); err == nil {
			return v
		}
	}
	return m.prior
}

// MeterState is the serialisable snapshot of a Meter, captured by State and
// revived by NewMeterFromState — the piece of control-plane state a
// checkpoint must carry so a resumed master plans from the estimates it had
// at the snapshot, not from cold priors.
type MeterState struct {
	// Prior is the rate guess used until the meter warms up.
	Prior float64
	// Value is the EWMA value; meaningful only when Init is set.
	Value float64
	// Init reports whether the EWMA has absorbed at least one observation.
	Init bool
	// Count is the number of observations recorded.
	Count int
}

// State snapshots the meter for checkpointing.
func (m *Meter) State() MeterState {
	return MeterState{Prior: m.prior, Value: m.ewma.value, Init: m.ewma.init, Count: m.count}
}

// NewMeterFromState revives a meter from a checkpointed snapshot with the
// given smoothing factor. A state with a non-positive count is normalised to
// a cold meter (prior only).
func NewMeterFromState(alpha float64, st MeterState) *Meter {
	m := NewMeter(alpha, st.Prior)
	if st.Count > 0 {
		m.count = st.Count
		m.ewma.value = st.Value
		m.ewma.init = st.Init
	}
	return m
}

// Reset clears the observation history but keeps the prior — for callers
// that know a machine's speed changed discontinuously (e.g. it moved to new
// hardware) and want the EWMA to restart rather than converge from stale
// samples. The elastic control plane deliberately does NOT reset on rejoin:
// a warm estimate is usually a better prior than none.
func (m *Meter) Reset() {
	m.ewma = EWMA{Alpha: m.ewma.Alpha}
	m.count = 0
}

// Misestimate perturbs true throughputs with multiplicative
// Uniform(1−eps, 1+eps) noise — the controlled estimation error used by the
// group-based ablation. eps=0 returns an exact copy.
func Misestimate(truth []float64, eps float64, rng *rand.Rand) []float64 {
	out := append([]float64(nil), truth...)
	if eps <= 0 || rng == nil {
		return out
	}
	for i := range out {
		f := 1 + eps*(2*rng.Float64()-1)
		if f < 0.05 {
			f = 0.05
		}
		out[i] *= f
	}
	return out
}
