package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSamplerMean(t *testing.T) {
	var s Sampler
	if err := s.Observe(4, 2); err != nil { // rate 2
		t.Fatal(err)
	}
	if err := s.Observe(8, 2); err != nil { // rate 4
		t.Fatal(err)
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("estimate = %v, want 3", got)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if _, err := s.Estimate(); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v", err)
	}
}

func TestSamplerRejectsBadObservations(t *testing.T) {
	var s Sampler
	if err := s.Observe(0, 1); err == nil {
		t.Fatal("want error for zero partitions")
	}
	if err := s.Observe(1, 0); err == nil {
		t.Fatal("want error for zero elapsed")
	}
	if err := s.Observe(-1, -1); err == nil {
		t.Fatal("want error for negatives")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	for i := 0; i < 30; i++ {
		if err := e.Observe(6, 2); err != nil { // steady rate 3
			t.Fatal(err)
		}
	}
	got, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("estimate = %v, want 3", got)
	}
}

func TestEWMATracksChange(t *testing.T) {
	e := EWMA{Alpha: 0.9}
	_ = e.Observe(2, 1) // rate 2
	_ = e.Observe(10, 1)
	got, _ := e.Estimate()
	if got < 8 {
		t.Fatalf("alpha=0.9 should track the new rate, got %v", got)
	}
}

func TestEWMAErrors(t *testing.T) {
	var e EWMA
	if _, err := e.Estimate(); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Observe(1, 1); err == nil {
		t.Fatal("alpha=0 should be rejected")
	}
	e2 := EWMA{Alpha: 2}
	if err := e2.Observe(1, 1); err == nil {
		t.Fatal("alpha>1 should be rejected")
	}
}

func TestMisestimateBoundsAndExactCopy(t *testing.T) {
	truth := []float64{1, 2, 4}
	rng := rand.New(rand.NewSource(1))
	noisy := Misestimate(truth, 0.25, rng)
	for i := range noisy {
		if noisy[i] < truth[i]*0.75-1e-9 || noisy[i] > truth[i]*1.25+1e-9 {
			t.Fatalf("noisy[%d] = %v out of bounds", i, noisy[i])
		}
	}
	exact := Misestimate(truth, 0, rng)
	for i := range exact {
		if exact[i] != truth[i] {
			t.Fatal("eps=0 must copy exactly")
		}
	}
	exact[0] = 99
	if truth[0] == 99 {
		t.Fatal("Misestimate must not alias input")
	}
}

func TestMeterPriorUntilReady(t *testing.T) {
	m := NewMeter(0.5, 4.0)
	if m.Ready(2) {
		t.Fatal("fresh meter must not be ready")
	}
	if got := m.Rate(2); got != 4.0 {
		t.Fatalf("cold rate = %v, want prior 4.0", got)
	}
	if err := m.Observe(10, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Rate(2); got != 4.0 {
		t.Fatalf("rate after 1 obs = %v, still want prior", got)
	}
	if err := m.Observe(10, 1); err != nil {
		t.Fatal(err)
	}
	if !m.Ready(2) || m.Count() != 2 {
		t.Fatalf("ready=%v count=%d", m.Ready(2), m.Count())
	}
	if got := m.Rate(2); got != 10 {
		t.Fatalf("warm rate = %v, want 10", got)
	}
}

func TestMeterResetRestoresPrior(t *testing.T) {
	m := NewMeter(0.5, 2.0)
	for i := 0; i < 5; i++ {
		if err := m.Observe(8, 1); err != nil {
			t.Fatal(err)
		}
	}
	m.Reset()
	if m.Count() != 0 || m.Rate(1) != 2.0 {
		t.Fatalf("after reset count=%d rate=%v", m.Count(), m.Rate(1))
	}
	if err := m.Observe(6, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Rate(1); got != 6 {
		t.Fatalf("rate after reset+observe = %v", got)
	}
}

func TestMeterRejectsBadObservation(t *testing.T) {
	m := NewMeter(0.5, 1)
	if err := m.Observe(0, 1); err == nil {
		t.Fatal("zero partitions must be rejected")
	}
	if err := m.Observe(1, -1); err == nil {
		t.Fatal("negative elapsed must be rejected")
	}
	if m.Count() != 0 {
		t.Fatalf("rejected observations must not count, got %d", m.Count())
	}
}

func TestMeterStateRoundTrip(t *testing.T) {
	m := NewMeter(0.5, 100)
	for i := 0; i < 5; i++ {
		if err := m.Observe(4, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	st := m.State()
	revived := NewMeterFromState(0.5, st)
	if got, want := revived.Rate(3), m.Rate(3); got != want {
		t.Fatalf("revived rate %v, want %v", got, want)
	}
	if revived.Count() != m.Count() {
		t.Fatalf("revived count %d, want %d", revived.Count(), m.Count())
	}
	// The revived meter keeps smoothing from where the original stood.
	if err := m.Observe(4, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := revived.Observe(4, 0.02); err != nil {
		t.Fatal(err)
	}
	if m.Rate(3) != revived.Rate(3) {
		t.Fatalf("post-restore smoothing diverged: %v vs %v", revived.Rate(3), m.Rate(3))
	}
}

func TestMeterStateColdNormalisation(t *testing.T) {
	// A state with a non-positive count revives cold: prior only.
	revived := NewMeterFromState(0.5, MeterState{Prior: 250, Value: 999, Init: true, Count: 0})
	if got := revived.Rate(1); got != 250 {
		t.Fatalf("cold revived rate %v, want the prior 250", got)
	}
	if revived.Ready(1) {
		t.Fatal("cold revived meter reports ready")
	}
}
